package chaos_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mndmst/internal/chaos"
	"mndmst/internal/cluster"
	"mndmst/internal/core"
	"mndmst/internal/cost"
	"mndmst/internal/gen"
	"mndmst/internal/graph"
	"mndmst/internal/hypar"
	"mndmst/internal/mst"
	"mndmst/internal/testutil"
	"mndmst/internal/transport"
)

// The differential oracle suite: randomized graphs from every generator
// family run through the full distributed MSF computation over
// chaos-wrapped transports, checked edge-for-edge against sequential
// Kruskal. Benign faults (delay, duplicate, reorder, slow links) must be
// invisible — identical forest, identical simulated clocks. Destructive
// faults (drop, corrupt, crash, partition) must surface as typed errors
// within a bounded time, never as a hang and never as a wrong forest.

// oracleCase is one workload of the differential suite.
type oracleCase struct {
	name string
	el   *graph.EdgeList
}

// oracleWorkloads builds the graph-class corpus: every profile family,
// disconnected forests, duplicate weights, self-loops.
func oracleWorkloads(seed int64) []oracleCase {
	cases := []oracleCase{
		// Erdos–Renyi at this density is disconnected and has self-loops.
		{"erdos_renyi_forest", gen.ErdosRenyi(220, 160, seed)},
		{"connected_random", gen.ConnectedRandom(150, 520, seed+1)},
		{"road_network", gen.RoadNetwork(140, seed+2)},
		{"duplicate_weights", duplicateWeights(120, 360, seed+3)},
		{"star_plus_isolated", starPlusIsolated(90, seed+4)},
	}
	for _, p := range gen.Profiles {
		cases = append(cases, oracleCase{"profile_" + p.Name, p.Generate(0.01)})
	}
	return cases
}

// duplicateWeights builds a random multigraph where every edge carries the
// same 16-bit weight class: the MSF is decided entirely by the
// deterministic edge-id tie-break, the distribution most sensitive to any
// nondeterminism the fault layer might introduce.
func duplicateWeights(n int32, m int, seed int64) *graph.EdgeList {
	base := gen.ErdosRenyi(n, m, seed)
	for i := range base.Edges {
		base.Edges[i].W = graph.MakeWeight(7, base.Edges[i].ID)
	}
	return base
}

// starPlusIsolated is a star over the first n/2 vertices with the rest
// isolated — a many-component forest with a hub.
func starPlusIsolated(n int32, seed int64) *graph.EdgeList {
	el := gen.Star(n/2, seed)
	el.N = n
	return el
}

func machine() cost.Machine { return cost.AMDCluster() }

// benignChaos is a fault mix a correct run must absorb: duplicates,
// reordering, and delays on every link of every rank.
func benignChaos(seed int64) chaos.Config {
	return chaos.Config{
		Seed:        seed,
		DupProb:     0.08,
		ReorderProb: 0.08,
		DelayProb:   0.12,
		DelayMax:    150 * time.Microsecond,
		RecvTimeout: 30 * time.Second,
	}
}

// runOverChaosMem executes the distributed computation with every rank's
// in-process endpoint wrapped in the same chaos layer. Results and errors
// are indexed by rank; the whole run is bounded by a watchdog.
func runOverChaosMem(t *testing.T, el *graph.EdgeList, p int, ccfg chaos.Config) ([]*core.Result, []error) {
	t.Helper()
	mems := transport.NewMem(p)
	eps := make([]transport.Transport, p)
	for i, m := range mems {
		eps[i] = m
	}
	wrapped := chaos.Wrap(eps, ccfg)

	results := make([]*core.Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer wrapped[r].Close()
			results[r], errs[r] = core.RunDistributed(el, wrapped[r], machine(), hypar.DefaultConfig(), false)
		}(r)
	}
	waitBounded(t, &wg, "chaos Mem run")
	return results, errs
}

// runOverChaosTCP is runOverChaosMem over a loopback TCP mesh: one socket
// endpoint per rank, each wrapped in its own chaos layer (faults on every
// link, exactly as p independently flaky processes would see them).
func runOverChaosTCP(t *testing.T, el *graph.EdgeList, p int, ccfg chaos.Config) ([]*core.Result, []error) {
	t.Helper()
	coord, err := transport.NewCoordinator("127.0.0.1:0", p, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve() //nolint:errcheck

	results := make([]*core.Result, p)
	errs := make([]error, p)
	ranks := make([]int, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			ranks[slot] = -1
			inner, err := transport.DialTCP(transport.TCPConfig{Coordinator: coord.Addr()})
			if err != nil {
				errs[slot] = err
				return
			}
			cfg := ccfg
			ep := chaos.WrapOne(inner, cfg)
			defer ep.Close()
			ranks[slot] = ep.Rank()
			results[slot], errs[slot] = core.RunDistributed(el, ep, machine(), hypar.DefaultConfig(), false)
		}(i)
	}
	waitBounded(t, &wg, "chaos TCP run")
	byRank := make([]*core.Result, p)
	byRankErr := make([]error, p)
	for slot := 0; slot < p; slot++ {
		if ranks[slot] < 0 {
			t.Fatalf("worker %d never joined: %v", slot, errs[slot])
		}
		byRank[ranks[slot]] = results[slot]
		byRankErr[ranks[slot]] = errs[slot]
	}
	return byRank, byRankErr
}

func waitBounded(t *testing.T, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(110 * time.Second):
		t.Fatalf("%s deadlocked: ranks still blocked after 110s", what)
	}
}

// checkOracle asserts the distributed result equals the sequential
// Kruskal ground truth: same total weight, same component count, same
// edge set.
func checkOracle(t *testing.T, name string, el *graph.EdgeList, root *core.Result) {
	t.Helper()
	if root == nil || root.Forest == nil {
		t.Fatalf("%s: rank 0 returned no forest", name)
	}
	want := mst.Kruskal(el)
	if root.Forest.TotalWeight != want.TotalWeight || root.Forest.Components != want.Components {
		t.Fatalf("%s: MSF diverges from Kruskal oracle: weight %d vs %d, components %d vs %d",
			name, root.Forest.TotalWeight, want.TotalWeight, root.Forest.Components, want.Components)
	}
	if err := core.VerifyAgainstKruskal(el, root); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

// TestOracleBenignChaosMem runs every workload class over chaos-wrapped
// in-process transports at 2, 4, and 8 ranks: dup/reorder/delay faults on
// every link, and the forest must still match sequential Kruskal exactly —
// with the simulated clocks of a fault-free run.
func TestOracleBenignChaosMem(t *testing.T) {
	seed := testutil.Seed(t, 20250806)
	for _, tc := range oracleWorkloads(seed) {
		for _, p := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/p%d", tc.name, p), func(t *testing.T) {
				clean, err := core.Run(tc.el, p, machine(), hypar.DefaultConfig(), false)
				if err != nil {
					t.Fatal(err)
				}
				results, errs := runOverChaosMem(t, tc.el, p, benignChaos(seed))
				for r, err := range errs {
					if err != nil {
						t.Fatalf("rank %d failed under benign chaos: %v", r, err)
					}
				}
				checkOracle(t, tc.name, tc.el, results[0])
				// Virtual time is untouched by benign faults: the chaos
				// run must report the clean run's simulated clocks.
				if got, want := results[0].Report.ExecutionTime(), clean.Report.ExecutionTime(); got != want {
					t.Fatalf("benign chaos perturbed simulated execution time: %v vs %v", got, want)
				}
				if got, want := results[0].Report.TotalBytes(), clean.Report.TotalBytes(); got != want {
					t.Fatalf("benign chaos perturbed simulated traffic: %d vs %d bytes", got, want)
				}
			})
		}
	}
}

// TestOracleBenignChaosTCP is the same differential check over real
// loopback sockets: every rank's TCP endpoint gets its own fault layer.
func TestOracleBenignChaosTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP mesh in -short mode")
	}
	seed := testutil.Seed(t, 20250807)
	el := gen.ConnectedRandom(200, 700, seed)
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			results, errs := runOverChaosTCP(t, el, p, benignChaos(seed))
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d failed under benign chaos: %v", r, err)
				}
			}
			checkOracle(t, "tcp", el, results[0])
		})
	}
}

// TestOracleSlowLinksMem degrades several links (slow-start plus a one-shot
// stall) and requires an exact forest: link speed must never change results.
func TestOracleSlowLinksMem(t *testing.T) {
	seed := testutil.Seed(t, 20250808)
	el := gen.RoadNetwork(150, seed)
	const p = 4
	cfg := chaos.Config{
		Seed:        seed,
		RecvTimeout: 30 * time.Second,
		Slow:        []chaos.LinkSlow{{Src: 1, Dst: 0, PerMsg: 100 * time.Microsecond, FirstN: 50}},
		Stall:       []chaos.LinkStall{{Src: 2, Dst: 3, AtSeq: 2, Pause: 5 * time.Millisecond}},
	}
	results, errs := runOverChaosMem(t, el, p, cfg)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed under slow links: %v", r, err)
		}
	}
	checkOracle(t, "slow-links", el, results[0])
}

// TestOracleCrashStopMemTyped crash-stops one rank mid-run at every rank
// count and requires: the run terminates within the watchdog, the crashed
// rank's error carries the CrashStopError, and every surviving rank fails
// with a typed cluster error — RankLostError or an AbortError cascade —
// never a hang, never a silently wrong forest.
func TestOracleCrashStopMemTyped(t *testing.T) {
	seed := testutil.Seed(t, 20250809)
	el := gen.ConnectedRandom(150, 500, seed)
	for _, p := range []int{2, 4, 8} {
		crashRank := p / 2
		t.Run(fmt.Sprintf("p%d_rank%d", p, crashRank), func(t *testing.T) {
			cfg := chaos.Config{
				Seed:        seed,
				RecvTimeout: 5 * time.Second,
				Crashes:     []chaos.Crash{{Rank: crashRank, Step: 5}},
			}
			start := time.Now()
			results, errs := runOverChaosMem(t, el, p, cfg)
			elapsed := time.Since(start)
			if elapsed > 60*time.Second {
				t.Fatalf("crash recovery took %v — not bounded by the deadline", elapsed)
			}
			var cse *chaos.CrashStopError
			if !errors.As(errs[crashRank], &cse) {
				t.Fatalf("crashed rank %d: want CrashStopError in chain, got %v", crashRank, errs[crashRank])
			}
			if cse.Rank != crashRank || cse.Step != 5 {
				t.Fatalf("wrong crash coordinates: %+v", cse)
			}
			for r := 0; r < p; r++ {
				if r == crashRank {
					continue
				}
				if errs[r] == nil {
					// A rank that finished before the crash propagated is
					// acceptable only if its result is still exact.
					if r == 0 {
						checkOracle(t, "survivor", el, results[0])
					}
					continue
				}
				var rle *cluster.RankLostError
				var ae *cluster.AbortError
				if !errors.As(errs[r], &rle) && !errors.As(errs[r], &ae) {
					t.Fatalf("rank %d: want typed RankLostError/AbortError, got %v", r, errs[r])
				}
			}
		})
	}
}

// TestOracleCrashStopTCPTyped is the crash-stop contract over real
// sockets: the dead rank's closed connections must surface at every peer
// as typed errors within the deadline.
func TestOracleCrashStopTCPTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP mesh in -short mode")
	}
	seed := testutil.Seed(t, 20250810)
	el := gen.ConnectedRandom(150, 500, seed)
	const p, crashRank = 4, 2
	base := chaos.Config{Seed: seed, RecvTimeout: 5 * time.Second}

	coord, err := transport.NewCoordinator("127.0.0.1:0", p, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve() //nolint:errcheck

	errs := make([]error, p)
	ranks := make([]int, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			ranks[slot] = -1
			inner, err := transport.DialTCP(transport.TCPConfig{
				Coordinator: coord.Addr(),
				PeerTimeout: 3 * time.Second,
			})
			if err != nil {
				errs[slot] = err
				return
			}
			cfg := base
			if inner.Rank() == crashRank {
				cfg.Crashes = []chaos.Crash{{Rank: crashRank, Step: 40}}
			}
			ep := chaos.WrapOne(inner, cfg)
			defer ep.Close()
			ranks[slot] = ep.Rank()
			_, errs[slot] = core.RunDistributed(el, ep, machine(), hypar.DefaultConfig(), false)
		}(i)
	}
	start := time.Now()
	waitBounded(t, &wg, "chaos TCP crash run")
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("crash recovery took %v", elapsed)
	}
	byRank := make([]error, p)
	for slot := 0; slot < p; slot++ {
		if ranks[slot] < 0 {
			t.Fatalf("worker %d never joined: %v", slot, errs[slot])
		}
		byRank[ranks[slot]] = errs[slot]
	}
	var cse *chaos.CrashStopError
	if !errors.As(byRank[crashRank], &cse) {
		t.Fatalf("crashed rank: want CrashStopError, got %v", byRank[crashRank])
	}
	for r := 0; r < p; r++ {
		if r == crashRank || byRank[r] == nil {
			continue
		}
		var rle *cluster.RankLostError
		var ae *cluster.AbortError
		if !errors.As(byRank[r], &rle) && !errors.As(byRank[r], &ae) {
			t.Fatalf("rank %d: want typed cluster error, got %v", r, byRank[r])
		}
	}
}

// TestOracleLossNeverWrong injects real message loss and demands the
// strong safety half of the contract: the run either completes with the
// exact Kruskal forest (every dropped message happened to be recoverable)
// or fails with a typed error — it must never deliver a wrong forest.
func TestOracleLossNeverWrong(t *testing.T) {
	seed := testutil.Seed(t, 20250811)
	el := gen.ConnectedRandom(120, 400, seed)
	const p = 4
	cfg := chaos.Config{
		Seed:        seed,
		DropProb:    0.02,
		CorruptProb: 0.01,
		RecvTimeout: 2 * time.Second,
	}
	results, errs := runOverChaosMem(t, el, p, cfg)
	failed := false
	for r := 0; r < p; r++ {
		if errs[r] == nil {
			continue
		}
		failed = true
		var rle *cluster.RankLostError
		var ae *cluster.AbortError
		var cse *chaos.CrashStopError
		if !errors.As(errs[r], &rle) && !errors.As(errs[r], &ae) && !errors.As(errs[r], &cse) {
			t.Fatalf("rank %d: loss surfaced untyped: %v", r, errs[r])
		}
	}
	if !failed {
		checkOracle(t, "lossy-but-lucky", el, results[0])
	}
}

// TestOraclePartitionDetected splits the cluster in half; ranks blocked on
// cross-partition traffic must fail with typed deadline errors, not hang.
func TestOraclePartitionDetected(t *testing.T) {
	seed := testutil.Seed(t, 20250812)
	el := gen.ConnectedRandom(120, 400, seed)
	const p = 4
	cfg := chaos.Config{
		Seed:        seed,
		Isolate:     []int{2, 3},
		RecvTimeout: 2 * time.Second,
	}
	start := time.Now()
	_, errs := runOverChaosMem(t, el, p, cfg)
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("partition detection took %v", elapsed)
	}
	anyFailed := false
	for r := 0; r < p; r++ {
		if errs[r] == nil {
			continue
		}
		anyFailed = true
		var rle *cluster.RankLostError
		var ae *cluster.AbortError
		if !errors.As(errs[r], &rle) && !errors.As(errs[r], &ae) {
			t.Fatalf("rank %d: partition surfaced untyped: %v", r, errs[r])
		}
	}
	if !anyFailed {
		t.Fatal("a full bisection went unnoticed — every rank claims success")
	}
}

// TestOracleChaosScheduleReplays reruns one benign-chaos computation with
// the same seed and asserts both the fault journal and the forest are
// identical — a logged seed is a complete reproduction.
func TestOracleChaosScheduleReplays(t *testing.T) {
	seed := testutil.Seed(t, 20250813)
	el := gen.ConnectedRandom(120, 400, seed)
	const p = 4
	run := func() (string, *core.Result) {
		mems := transport.NewMem(p)
		eps := make([]transport.Transport, p)
		for i, m := range mems {
			eps[i] = m
		}
		wrapped := chaos.Wrap(eps, benignChaos(seed))
		results := make([]*core.Result, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				defer wrapped[r].Close()
				results[r], errs[r] = core.RunDistributed(el, wrapped[r], machine(), hypar.DefaultConfig(), false)
			}(r)
		}
		waitBounded(t, &wg, "replay run")
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return chaos.FormatJournal(wrapped[0].Journal()), results[0]
	}
	j1, r1 := run()
	j2, r2 := run()
	if j1 != j2 {
		t.Fatalf("same seed drew different fault schedules:\n--- run 1 ---\n%s--- run 2 ---\n%s", j1, j2)
	}
	if j1 == "" {
		t.Fatal("no faults injected — replay check is vacuous")
	}
	if !r1.Forest.Equal(r2.Forest) {
		t.Fatal("same seed produced different forests")
	}
}

package chaos

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mndmst/internal/transport"
	"mndmst/internal/wire"
)

// Transport is one rank's fault-injecting endpoint. It implements
// transport.Transport (and transport.Aborter) by decorating an inner
// endpoint: every outbound message is wire-framed with a per-link sequence
// number and subjected to the configured faults; every inbound message is
// validated, deduplicated, and reassembled in sequence order, with a
// per-op deadline so nothing ever blocks forever.
type Transport struct {
	inner transport.Transport
	g     *group
	rank  int
	crash *Crash

	// step is the endpoint's Lamport operation counter: incremented on
	// every Send, Isend, and Recv, it is the clock scripted crashes fire
	// on.
	step atomic.Uint64

	crashMu  sync.Mutex
	crashErr error

	sends []*sendLink
	recvs []*recvLink

	done      chan struct{}
	closeOnce sync.Once
}

// sendLink is the per-destination sender state: the sequence counter and
// the one-slot reorder holdback.
type sendLink struct {
	mu   sync.Mutex
	seq  uint64
	held *framed // message held back by a reorder fault
}

// framed is one chaos-framed message ready for the inner transport.
type framed struct {
	msg transport.Message
}

// recvLink is the per-source receiver state: the persistent puller feeding
// raw inner messages through ch, the next expected sequence number, and
// the reorder reassembly buffer.
type recvLink struct {
	mu      sync.Mutex // serializes Recv calls from one src
	ch      chan pulled
	started atomic.Bool
	err     error // sticky link failure (guarded by mu)
	next    uint64
	pending map[uint64]transport.Message
}

// pulled is one raw delivery (or the inner transport's failure).
type pulled struct {
	m   transport.Message
	err error
}

func newTransport(inner transport.Transport, g *group) *Transport {
	p := inner.P()
	t := &Transport{
		inner: inner,
		g:     g,
		rank:  inner.Rank(),
		crash: g.cfg.crashFor(inner.Rank()),
		sends: make([]*sendLink, p),
		recvs: make([]*recvLink, p),
		done:  make(chan struct{}),
	}
	for i := 0; i < p; i++ {
		t.sends[i] = &sendLink{}
		t.recvs[i] = &recvLink{ch: make(chan pulled), pending: make(map[uint64]transport.Message)}
	}
	return t
}

// Rank reports the inner endpoint's rank.
func (t *Transport) Rank() int { return t.inner.Rank() }

// P reports the cluster size.
func (t *Transport) P() int { return t.inner.P() }

// checkCrash advances the Lamport counter and fires the scripted crash
// once the counter reaches its step: the inner endpoint closes and every
// subsequent operation returns the same CrashStopError.
func (t *Transport) checkCrash() error {
	step := t.step.Add(1)
	if t.crash == nil {
		return nil
	}
	t.crashMu.Lock()
	defer t.crashMu.Unlock()
	if t.crashErr != nil {
		return t.crashErr
	}
	if step >= t.crash.Step {
		t.crashErr = &CrashStopError{Rank: t.rank, Step: t.crash.Step}
		t.g.record(Event{Src: t.rank, Dst: t.rank, Seq: t.crash.Step, Fault: FaultCrash})
		t.inner.Close() // peers observe the death through their transport
	}
	return t.crashErr
}

// Decide is the pure fault-decision function: the fault (if any) injected
// into message seq of link src→dst under cfg. It depends only on its
// arguments — no state, no clock, no scheduler — which is what makes a
// chaos schedule replayable from its seed alone.
func Decide(cfg Config, src, dst int, seq uint64) FaultKind {
	for _, f := range cfg.Faults {
		if f.Src == src && f.Dst == dst && f.Seq == seq {
			return f.Fault
		}
	}
	if cfg.DropProb == 0 && cfg.CorruptProb == 0 && cfg.DupProb == 0 &&
		cfg.ReorderProb == 0 && cfg.DelayProb == 0 {
		return FaultNone
	}
	rng := rand.New(rand.NewSource(mix(cfg.Seed, src, dst, seq)))
	// One draw per fault class, in fixed order, so adding a probability
	// never reshuffles the draws of the classes before it.
	pDrop, pCorrupt, pDup := rng.Float64(), rng.Float64(), rng.Float64()
	pReorder, pDelay := rng.Float64(), rng.Float64()
	switch {
	case pDrop < cfg.DropProb:
		return FaultDrop
	case pCorrupt < cfg.CorruptProb:
		return FaultCorrupt
	case pDup < cfg.DupProb:
		return FaultDup
	case pReorder < cfg.ReorderProb:
		return FaultReorder
	case pDelay < cfg.DelayProb:
		return FaultDelay
	default:
		return FaultNone
	}
}

// delayFor derives the seed-determined duration of a FaultDelay.
func delayFor(cfg Config, src, dst int, seq uint64) time.Duration {
	rng := rand.New(rand.NewSource(mix(cfg.Seed, src, dst, seq) ^ 0x64656c6179)) // "delay"
	return time.Duration(rng.Int63n(int64(cfg.delayMax()))) + 1
}

// corruptAt derives the seed-determined payload bit a FaultCorrupt flips.
func corruptAt(cfg Config, src, dst int, seq uint64, payloadLen int) (offset int, bit uint) {
	rng := rand.New(rand.NewSource(mix(cfg.Seed, src, dst, seq) ^ 0x636f7272)) // "corr"
	return rng.Intn(payloadLen), uint(rng.Intn(8))
}

// mix folds a link coordinate into the seed with a splitmix64 finalizer.
func mix(seed int64, src, dst int, seq uint64) int64 {
	z := uint64(seed) ^ uint64(src)*0x9E3779B97F4A7C15 ^ uint64(dst)<<32 ^ seq*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Send delivers m to dst through the fault layer, synchronously.
func (t *Transport) Send(dst int, m transport.Message) error {
	return t.send(dst, m, false)
}

// Isend delivers m to dst through the fault layer, asynchronously.
func (t *Transport) Isend(dst int, m transport.Message) error {
	return t.send(dst, m, true)
}

func (t *Transport) send(dst int, m transport.Message, async bool) error {
	if err := t.checkCrash(); err != nil {
		return err
	}
	if err := t.g.aborted(); err != nil {
		return err
	}
	cfg := t.g.cfg
	l := t.sends[dst]
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.seq
	l.seq++

	if cfg.split(t.rank, dst) {
		// Partitioned: the message vanishes on the (severed) wire. The
		// sequence number is consumed, exactly as a real link would lose
		// the bytes after the sender accounted for them.
		t.g.record(Event{Src: t.rank, Dst: dst, Seq: seq, Fault: FaultPartition})
		return nil
	}

	t.degradeLink(dst, seq)

	fault := Decide(cfg, t.rank, dst, seq)
	data := frameMsg(m, seq)
	if fault != FaultNone {
		t.g.record(Event{Src: t.rank, Dst: dst, Seq: seq, Fault: fault})
	}

	// The previous reorder holdback (if any) is delivered AFTER whatever
	// this call delivers, materializing the out-of-order arrival.
	flush := l.held
	l.held = nil

	switch fault {
	case FaultDrop:
		// Deliver nothing; the receiver sees the gap.
	case FaultCorrupt:
		off, bit := corruptAt(cfg, t.rank, dst, seq, len(data)-wire.FrameHeaderLen)
		data[wire.FrameHeaderLen+off] ^= 1 << bit
		if err := t.forward(dst, m, data, async); err != nil {
			return err
		}
	case FaultDup:
		if err := t.forward(dst, m, data, async); err != nil {
			return err
		}
		if err := t.forward(dst, m, data, async); err != nil {
			return err
		}
	case FaultReorder:
		h := &framed{msg: inner(m, data)}
		l.held = h
		// Safety valve: if no later send flushes the holdback (it was the
		// link's last message), a timer delivers it anyway, so a reorder is
		// always a bounded delay and never a silent loss. The receiver
		// reassembles by sequence number either way.
		time.AfterFunc(t.holdMax(), func() { t.flushHeld(dst, l, h) })
	case FaultDelay:
		time.Sleep(delayFor(cfg, t.rank, dst, seq))
		if err := t.forward(dst, m, data, async); err != nil {
			return err
		}
	default:
		if err := t.forward(dst, m, data, async); err != nil {
			return err
		}
	}
	if flush != nil {
		if err := t.forwardMsg(dst, flush.msg, async); err != nil {
			return err
		}
	}
	return nil
}

// holdMax bounds how long a reorder fault may hold a message back when no
// later traffic flushes it.
func (t *Transport) holdMax() time.Duration {
	return 2 * t.g.cfg.delayMax()
}

// flushHeld delivers a reorder holdback if it is still being held.
func (t *Transport) flushHeld(dst int, l *sendLink, h *framed) {
	l.mu.Lock()
	if l.held != h {
		l.mu.Unlock()
		return
	}
	l.held = nil
	l.mu.Unlock()
	t.inner.Isend(dst, h.msg) // best effort: a late flush beats a silent loss
}

// degradeLink applies the configured Slow and Stall pauses of link
// t.rank→dst to message seq.
func (t *Transport) degradeLink(dst int, seq uint64) {
	for _, s := range t.g.cfg.Slow {
		if s.Src == t.rank && s.Dst == dst && (s.FirstN == 0 || seq < s.FirstN) {
			t.g.record(Event{Src: t.rank, Dst: dst, Seq: seq, Fault: FaultSlow})
			time.Sleep(s.PerMsg)
		}
	}
	for _, s := range t.g.cfg.Stall {
		if s.Src == t.rank && s.Dst == dst && s.AtSeq == seq {
			t.g.record(Event{Src: t.rank, Dst: dst, Seq: seq, Fault: FaultStall})
			time.Sleep(s.Pause)
		}
	}
}

// frameMsg wraps a message in the chaos wire frame: tag-matched,
// CRC-covered, sequence-numbered. The frame payload is always at least 8
// bytes (the sequence number), so a corruption offset inside the payload
// always exists and is always covered by the CRC.
func frameMsg(m transport.Message, seq uint64) []byte {
	payload := make([]byte, 0, 8+len(m.Data))
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	payload = append(payload, m.Data...)
	return wire.AppendFrame(nil, m.Tag, payload)
}

// inner rebuilds the inner-transport message carrying framed data.
func inner(m transport.Message, data []byte) transport.Message {
	return transport.Message{Tag: m.Tag, Arrival: m.Arrival, Data: data}
}

func (t *Transport) forward(dst int, m transport.Message, data []byte, async bool) error {
	return t.forwardMsg(dst, inner(m, data), async)
}

func (t *Transport) forwardMsg(dst int, m transport.Message, async bool) error {
	if async {
		return t.inner.Isend(dst, m)
	}
	return t.inner.Send(dst, m)
}

// Recv returns the next in-sequence message from src: duplicates are
// discarded, reordered arrivals are buffered and released in order, and
// corruption, loss, silence, crash, and abort all surface as typed errors
// within a bounded time.
func (t *Transport) Recv(src int) (transport.Message, error) {
	if err := t.checkCrash(); err != nil {
		return transport.Message{}, err
	}
	l := t.recvs[src]
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return transport.Message{}, l.err
	}
	t.startPuller(l, src)
	for {
		if m, ok := l.pending[l.next]; ok {
			delete(l.pending, l.next)
			l.next++
			return m, nil
		}
		if len(l.pending) > t.g.cfg.reorderWindow() {
			l.err = &transport.PeerDeadError{Rank: src, Cause: &FrameLossError{
				Src: src, Want: l.next, Buffered: len(l.pending),
			}}
			return transport.Message{}, l.err
		}
		raw, err := t.pull(l, src)
		if err != nil {
			l.err = err
			return transport.Message{}, err
		}
		seq, m, err := t.unframe(src, raw)
		if err != nil {
			l.err = err
			return transport.Message{}, err
		}
		if seq < l.next {
			// A duplicate of an already-delivered message: discard.
			t.g.record(Event{Src: src, Dst: t.rank, Seq: seq, Fault: FaultDupDiscard})
			continue
		}
		l.pending[seq] = m
	}
}

// startPuller lazily starts the link's persistent reader goroutine. One
// puller per (src → this rank) link lives for the endpoint's lifetime:
// a Recv deadline must not abandon a blocking inner Recv in a way that
// steals the next message, so the puller owns the inner stream and Recv
// consumes from its channel.
func (t *Transport) startPuller(l *recvLink, src int) {
	if !l.started.CompareAndSwap(false, true) {
		return
	}
	go func() { // joined by t.done: exits on endpoint close/abort or inner failure
		for {
			m, err := t.inner.Recv(src)
			select {
			case l.ch <- pulled{m: m, err: err}:
			case <-t.done:
				return
			}
			if err != nil {
				return // inner link is sticky-failed; nothing more to pull
			}
		}
	}()
}

// pull waits for the puller's next raw delivery, bounded by the configured
// per-op deadline and the group abort latch.
func (t *Transport) pull(l *recvLink, src int) (transport.Message, error) {
	var deadline <-chan time.Time
	if to := t.g.cfg.RecvTimeout; to > 0 {
		timer := time.NewTimer(to)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case p := <-l.ch:
		if p.err != nil {
			return transport.Message{}, p.err
		}
		return p.m, nil
	case <-deadline:
		return transport.Message{}, &transport.PeerDeadError{Rank: src, Cause: &DeadlineError{
			Src: src, Want: l.next, Timeout: t.g.cfg.RecvTimeout,
		}}
	case <-t.g.abortCh:
		return transport.Message{}, t.g.aborted()
	}
}

// unframe validates one chaos frame: CRC (the wire path that catches
// injected corruption), tag consistency, and the sequence header.
func (t *Transport) unframe(src int, m transport.Message) (uint64, transport.Message, error) {
	tag, payload, rest, err := wire.TakeFrame(m.Data)
	if err != nil {
		return 0, transport.Message{}, &transport.PeerDeadError{Rank: src, Cause: &CorruptFrameError{Src: src, Err: err}}
	}
	if len(rest) != 0 || tag != m.Tag || len(payload) < 8 {
		return 0, transport.Message{}, &transport.PeerDeadError{Rank: src, Cause: &CorruptFrameError{
			Src: src, Err: fmt.Errorf("frame shape: tag %d vs %d, %d trailing, %d payload", tag, m.Tag, len(rest), len(payload)),
		}}
	}
	seq := binary.LittleEndian.Uint64(payload)
	return seq, transport.Message{Tag: m.Tag, Arrival: m.Arrival, Data: payload[8:]}, nil
}

// Close flushes any reorder holdbacks (best effort) and tears the
// endpoint down: the pullers exit and the inner transport closes.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		for dst, l := range t.sends {
			l.mu.Lock()
			if h := l.held; h != nil {
				l.held = nil
				t.inner.Isend(dst, h.msg) // best effort: a late flush beats a silent loss
			}
			l.mu.Unlock()
		}
		close(t.done)
		t.inner.Close()
	})
	return nil
}

// Abort fails the whole endpoint with cause: the group latch unblocks
// every chaos-level Recv, and the inner endpoint aborts (or closes), which
// unblocks the pullers and notifies peers.
func (t *Transport) Abort(cause error) {
	t.g.abort(cause)
	if a, ok := t.inner.(transport.Aborter); ok {
		a.Abort(cause)
	} else {
		t.inner.Close()
	}
}

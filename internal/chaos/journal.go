package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mndmst/internal/obs"
)

// Event records one injected fault: message seq of link Src→Dst was
// subjected to Fault. Crash events use Src == Dst == the crashed rank and
// Seq == the scripted step.
type Event struct {
	Src, Dst int
	Seq      uint64
	Fault    FaultKind
}

func (e Event) String() string {
	return fmt.Sprintf("%d->%d seq=%d %s", e.Src, e.Dst, e.Seq, e.Fault)
}

// group is the state shared by every endpoint Wrap decorates: the config,
// the fault journal, and the abort latch.
type group struct {
	cfg    Config
	faults *obs.CounterVec // nil (no-op) without Config.Metrics

	mu     sync.Mutex
	events []Event

	abortCh   chan struct{}
	abortOnce sync.Once
	abortErr  error
}

func newGroup(cfg Config) *group {
	return &group{
		cfg: cfg,
		faults: cfg.Metrics.CounterVec("mndmst_chaos_faults_total",
			"injected faults recorded in the chaos journal, by fault kind", "kind"),
		abortCh: make(chan struct{}),
	}
}

// record appends one fault event to the journal (and counts it by kind
// when a metrics registry is configured).
func (g *group) record(e Event) {
	g.faults.With(string(e.Fault)).Inc()
	g.mu.Lock()
	g.events = append(g.events, e)
	g.mu.Unlock()
}

// abort latches the group failed: every blocked chaos Recv unblocks with
// cause. The first cause wins.
func (g *group) abort(cause error) {
	g.abortOnce.Do(func() {
		g.mu.Lock()
		g.abortErr = cause
		g.mu.Unlock()
		close(g.abortCh)
	})
}

// aborted reports the latched abort cause, or nil.
func (g *group) aborted() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.abortErr
}

// Journal returns the injected-fault schedule of every endpoint sharing
// this decorator group: the send-side decisions (drop, corrupt, dup,
// reorder, delay, slow, stall, partition) plus scripted crashes. These are
// pure functions of the seed and the per-link sequence numbers, so two
// replays of the same run compare byte-identically regardless of
// goroutine scheduling. Receive-side observations (duplicate discards),
// whose presence depends on how far each receiver drained before
// shutdown, are reported separately by Effects. Events are sorted into
// the canonical (Src, Dst, Seq, Fault) order.
func (t *Transport) Journal() []Event {
	return t.sortedEvents(func(e Event) bool { return e.Fault != FaultDupDiscard })
}

// Effects returns the receive-side fault observations (currently only
// duplicate discards). Unlike the Journal schedule, whether a given
// effect is observed can depend on goroutine scheduling: a duplicate
// still in flight when its receiver shuts down is never discarded.
func (t *Transport) Effects() []Event {
	return t.sortedEvents(func(e Event) bool { return e.Fault == FaultDupDiscard })
}

func (t *Transport) sortedEvents(keep func(Event) bool) []Event {
	g := t.g
	g.mu.Lock()
	var out []Event
	for _, e := range g.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Fault < b.Fault
	})
	return out
}

// FormatJournal renders a journal one event per line — the replayable
// fault schedule a failing test logs next to its seed.
func FormatJournal(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

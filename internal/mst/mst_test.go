package mst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mndmst/internal/gen"
	"mndmst/internal/graph"
)

// knownGraph returns a small graph with a hand-computed MST.
//
//	0 --1-- 1
//	|      /|
//	4    2  3
//	|  /    |
//	2 --5-- 3
//
// weights (rand parts): 0-1:1, 1-2:2, 1-3:3, 0-2:4, 2-3:5
// MST: {0-1, 1-2, 1-3} (edge ids 0, 1, 2).
func knownGraph() *graph.EdgeList {
	mk := func(u, v int32, w uint16, id int32) graph.Edge {
		return graph.Edge{U: u, V: v, W: graph.MakeWeight(w, id), ID: id}
	}
	return &graph.EdgeList{N: 4, Edges: []graph.Edge{
		mk(0, 1, 1, 0),
		mk(1, 2, 2, 1),
		mk(1, 3, 3, 2),
		mk(0, 2, 4, 3),
		mk(2, 3, 5, 4),
	}}
}

func TestKruskalKnownGraph(t *testing.T) {
	el := knownGraph()
	f := Kruskal(el)
	if len(f.EdgeIDs) != 3 || f.Components != 1 {
		t.Fatalf("forest=%+v", f)
	}
	want := []int32{0, 1, 2}
	for i, id := range f.EdgeIDs {
		if id != want[i] {
			t.Fatalf("edges=%v want %v", f.EdgeIDs, want)
		}
	}
	if err := VerifyForest(el, f); err != nil {
		t.Fatal(err)
	}
}

func TestPrimAndBoruvkaMatchKruskalKnown(t *testing.T) {
	el := knownGraph()
	k := Kruskal(el)
	p := Prim(graph.MustBuildCSR(el))
	b := Boruvka(el)
	if !k.Equal(p) {
		t.Fatalf("prim=%+v kruskal=%+v", p, k)
	}
	if !k.Equal(b) {
		t.Fatalf("boruvka=%+v kruskal=%+v", b, k)
	}
}

func TestMSFOnDisconnectedGraph(t *testing.T) {
	mk := func(u, v int32, w uint16, id int32) graph.Edge {
		return graph.Edge{U: u, V: v, W: graph.MakeWeight(w, id), ID: id}
	}
	// Components {0,1,2} and {3,4}; vertex 5 isolated.
	el := &graph.EdgeList{N: 6, Edges: []graph.Edge{
		mk(0, 1, 2, 0), mk(1, 2, 1, 1), mk(0, 2, 9, 2),
		mk(3, 4, 4, 3),
	}}
	for name, f := range map[string]*Forest{
		"kruskal": Kruskal(el),
		"prim":    Prim(graph.MustBuildCSR(el)),
		"boruvka": Boruvka(el),
	} {
		if len(f.EdgeIDs) != 3 {
			t.Fatalf("%s: edges=%v", name, f.EdgeIDs)
		}
		if f.Components != 3 {
			t.Fatalf("%s: components=%d want 3", name, f.Components)
		}
		if err := VerifyForest(el, f); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMSFIgnoresSelfLoopsAndParallelEdges(t *testing.T) {
	mk := func(u, v int32, w uint16, id int32) graph.Edge {
		return graph.Edge{U: u, V: v, W: graph.MakeWeight(w, id), ID: id}
	}
	el := &graph.EdgeList{N: 3, Edges: []graph.Edge{
		mk(0, 0, 0, 0), // self-loop, lightest of all — must be ignored
		mk(0, 1, 5, 1), // parallel pair: this one heavier
		mk(0, 1, 2, 2), // ... this one lighter, must win
		mk(1, 2, 3, 3),
	}}
	k := Kruskal(el)
	if len(k.EdgeIDs) != 2 || k.EdgeIDs[0] != 2 || k.EdgeIDs[1] != 3 {
		t.Fatalf("edges=%v want [2 3]", k.EdgeIDs)
	}
	if !k.Equal(Boruvka(el)) || !k.Equal(Prim(graph.MustBuildCSR(el))) {
		t.Fatal("algorithms disagree on multigraph")
	}
	if err := VerifyForest(el, k); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	empty := &graph.EdgeList{N: 0}
	single := &graph.EdgeList{N: 1}
	for _, el := range []*graph.EdgeList{empty, single} {
		k := Kruskal(el)
		if len(k.EdgeIDs) != 0 {
			t.Fatalf("edges=%v", k.EdgeIDs)
		}
		if !k.Equal(Boruvka(el)) || !k.Equal(Prim(graph.MustBuildCSR(el))) {
			t.Fatal("trivial graphs disagree")
		}
		if err := VerifyForest(el, k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestThreeAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(2 + rng.Intn(80))
		m := rng.Intn(300)
		el := gen.ErdosRenyi(n, m, seed)
		k := Kruskal(el)
		if !k.Equal(Prim(graph.MustBuildCSR(el))) {
			return false
		}
		if !k.Equal(Boruvka(el)) {
			return false
		}
		return VerifyForest(el, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreeOnWorkloadFamilies(t *testing.T) {
	for _, el := range []*graph.EdgeList{
		gen.RoadNetwork(400, 31),
		gen.RMAT(256, 2048, 32),
		gen.Path(50, 33),
		gen.Cycle(50, 34),
		gen.Star(50, 35),
	} {
		k := Kruskal(el)
		if !k.Equal(Boruvka(el)) {
			t.Fatalf("boruvka disagrees on %d-vertex graph", el.N)
		}
		if !k.Equal(Prim(graph.MustBuildCSR(el))) {
			t.Fatalf("prim disagrees on %d-vertex graph", el.N)
		}
		if err := VerifyForest(el, k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVerifyForestRejectsBadForests(t *testing.T) {
	el := knownGraph()
	good := Kruskal(el)

	cyc := &Forest{EdgeIDs: []int32{0, 1, 3}, Components: 1}
	for _, id := range cyc.EdgeIDs {
		cyc.TotalWeight += el.Edges[id].W
	}
	if VerifyForest(el, cyc) == nil {
		t.Fatal("cycle-inducing... wait, {0,1,3} = 0-1,1-2,0-2 IS a cycle; must be rejected")
	}

	nonMin := &Forest{EdgeIDs: []int32{0, 3, 4}, Components: 1} // spanning but heavier
	for _, id := range nonMin.EdgeIDs {
		nonMin.TotalWeight += el.Edges[id].W
	}
	if VerifyForest(el, nonMin) == nil {
		t.Fatal("non-minimal spanning tree accepted")
	}

	short := &Forest{EdgeIDs: []int32{0}, Components: 3, TotalWeight: el.Edges[0].W}
	if VerifyForest(el, short) == nil {
		t.Fatal("non-spanning forest accepted")
	}

	dupe := &Forest{EdgeIDs: []int32{0, 0}, Components: 2, TotalWeight: 2 * el.Edges[0].W}
	if VerifyForest(el, dupe) == nil {
		t.Fatal("duplicate edge accepted")
	}

	badW := &Forest{EdgeIDs: append([]int32(nil), good.EdgeIDs...), Components: 1, TotalWeight: good.TotalWeight + 1}
	if VerifyForest(el, badW) == nil {
		t.Fatal("wrong declared weight accepted")
	}

	badID := &Forest{EdgeIDs: []int32{99}, Components: 3}
	if VerifyForest(el, badID) == nil {
		t.Fatal("out-of-range id accepted")
	}

	badComp := &Forest{EdgeIDs: append([]int32(nil), good.EdgeIDs...), Components: 7, TotalWeight: good.TotalWeight}
	if VerifyForest(el, badComp) == nil {
		t.Fatal("wrong component count accepted")
	}
}

func TestForestEqual(t *testing.T) {
	a := &Forest{EdgeIDs: []int32{2, 1}, TotalWeight: 10}
	b := &Forest{EdgeIDs: []int32{1, 2}, TotalWeight: 10}
	if !a.Equal(b) {
		t.Fatal("order should not matter")
	}
	c := &Forest{EdgeIDs: []int32{1, 3}, TotalWeight: 10}
	if a.Equal(c) {
		t.Fatal("different edges compared equal")
	}
}

package mst

import (
	"fmt"

	"mndmst/internal/dsu"
	"mndmst/internal/graph"
)

// VerifyForest checks that f is exactly the minimum spanning forest of el:
//
//  1. the chosen edge ids exist, are unique, and contain no self-loops;
//  2. the chosen edges are acyclic (forest property);
//  3. the chosen edges span: |edges| = V − components(G), i.e. adding any
//     non-chosen edge cannot join two forest components that are connected
//     in G but not in F;
//  4. the cut property holds for every chosen edge under distinct weights:
//     no non-chosen edge crosses between the two forest parts created by
//     removing the chosen edge with a smaller weight. (Checked exactly via
//     the path-max property below, which is equivalent and O(E·α) total.)
//
// The cycle/path check uses the standard verification: F is the MSF iff F
// is a spanning forest and every non-tree edge (u,v,w) satisfies
// w > max-weight edge on the F-path between u and v. With distinct weights
// this implies uniqueness, so matching TotalWeight against another verified
// forest is a complete equality check.
func VerifyForest(el *graph.EdgeList, f *Forest) error {
	n := int(el.N)
	chosen := make(map[int32]bool, len(f.EdgeIDs))
	var sum uint64
	d := dsu.New(n)
	for _, id := range f.EdgeIDs {
		if id < 0 || int(id) >= len(el.Edges) {
			return fmt.Errorf("mst: edge id %d out of range", id)
		}
		if chosen[id] {
			return fmt.Errorf("mst: edge id %d chosen twice", id)
		}
		chosen[id] = true
		e := &el.Edges[id]
		if e.U == e.V {
			return fmt.Errorf("mst: self-loop %d chosen", id)
		}
		if !d.Union(e.U, e.V) {
			return fmt.Errorf("mst: edge %d (%d-%d) creates a cycle", id, e.U, e.V)
		}
		sum += e.W
	}
	if sum != f.TotalWeight {
		return fmt.Errorf("mst: declared weight %d but edges sum to %d", f.TotalWeight, sum)
	}

	// Spanning: no non-chosen edge may join two distinct forest components.
	for i := range el.Edges {
		e := &el.Edges[i]
		if chosen[e.ID] || e.U == e.V {
			continue
		}
		if !d.Same(e.U, e.V) {
			return fmt.Errorf("mst: edge %d (%d-%d) joins unspanned components", e.ID, e.U, e.V)
		}
	}
	if want := n - len(f.EdgeIDs); f.Components != want {
		return fmt.Errorf("mst: declared %d components, edges imply %d", f.Components, want)
	}

	// Minimality via path-max: build the forest adjacency and for every
	// non-tree edge check its weight exceeds the heaviest edge on the tree
	// path between its endpoints. For the graph sizes verified in tests an
	// LCA-free doubling-less walk is enough: root each tree with BFS,
	// record parent edges, and walk both endpoints up, tracking the max.
	parent := make([]int32, n)
	parentW := make([]uint64, n)
	depth := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	adj := make([][]int32, n) // chosen-edge adjacency: edge indices
	for _, id := range f.EdgeIDs {
		e := &el.Edges[id]
		adj[e.U] = append(adj[e.U], id)
		adj[e.V] = append(adj[e.V], id)
	}
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range adj[u] {
				e := &el.Edges[id]
				v := e.U
				if v == u {
					v = e.V
				}
				if seen[v] {
					continue
				}
				seen[v] = true
				parent[v] = u
				parentW[v] = e.W
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	pathMax := func(u, v int32) uint64 {
		var m uint64
		for depth[u] > depth[v] {
			if parentW[u] > m {
				m = parentW[u]
			}
			u = parent[u]
		}
		for depth[v] > depth[u] {
			if parentW[v] > m {
				m = parentW[v]
			}
			v = parent[v]
		}
		for u != v {
			if parentW[u] > m {
				m = parentW[u]
			}
			if parentW[v] > m {
				m = parentW[v]
			}
			u, v = parent[u], parent[v]
		}
		return m
	}
	for i := range el.Edges {
		e := &el.Edges[i]
		if chosen[e.ID] || e.U == e.V {
			continue
		}
		if m := pathMax(e.U, e.V); graph.WeightLess(e.W, m) {
			return fmt.Errorf("mst: non-tree edge %d (w=%d) lighter than path max %d — not minimal", e.ID, e.W, m)
		}
	}
	return nil
}

// Package mst provides reference minimum-spanning-forest algorithms —
// Kruskal, Prim, and sequential Boruvka — plus forest verification. With the
// distinct edge weights guaranteed by package graph, the MSF is unique, so
// these implementations serve as exact ground truth for the parallel and
// distributed implementations in the rest of the repository.
package mst

import (
	"container/heap"
	"sort"

	"mndmst/internal/dsu"
	"mndmst/internal/graph"
)

// Forest is a minimum spanning forest: the ids of the chosen edges, their
// total weight, and the number of connected components they span.
type Forest struct {
	EdgeIDs     []int32
	TotalWeight uint64
	Components  int
}

// sortIDs normalizes the edge order so forests compare by value.
func (f *Forest) sortIDs() {
	sort.Slice(f.EdgeIDs, func(i, j int) bool { return f.EdgeIDs[i] < f.EdgeIDs[j] })
}

// Equal reports whether two forests choose the same edge set.
func (f *Forest) Equal(g *Forest) bool {
	if f.TotalWeight != g.TotalWeight || len(f.EdgeIDs) != len(g.EdgeIDs) {
		return false
	}
	f.sortIDs()
	g.sortIDs()
	for i := range f.EdgeIDs {
		if f.EdgeIDs[i] != g.EdgeIDs[i] {
			return false
		}
	}
	return true
}

// Kruskal computes the MSF by sorting all edges and greedily joining
// components.
func Kruskal(el *graph.EdgeList) *Forest {
	order := make([]int32, len(el.Edges))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return graph.WeightLess(el.Edges[order[i]].W, el.Edges[order[j]].W)
	})
	d := dsu.New(int(el.N))
	f := &Forest{}
	for _, i := range order {
		e := &el.Edges[i]
		if e.U == e.V {
			continue
		}
		if d.Union(e.U, e.V) {
			f.EdgeIDs = append(f.EdgeIDs, e.ID)
			f.TotalWeight += e.W
			if len(f.EdgeIDs) == int(el.N)-1 {
				break
			}
		}
	}
	f.Components = int(el.N) - len(f.EdgeIDs)
	f.sortIDs()
	return f
}

// primItem is a heap entry: a candidate arc into the tree.
type primItem struct {
	w   uint64
	arc int64
	to  int32
}

type primHeap []primItem

func (h primHeap) Len() int            { return len(h) }
func (h primHeap) Less(i, j int) bool  { return graph.WeightLess(h[i].w, h[j].w) }
func (h primHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *primHeap) Push(x interface{}) { *h = append(*h, x.(primItem)) }
func (h *primHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Prim computes the MSF with a lazy binary-heap Prim from every unvisited
// vertex (restarting per component).
func Prim(g *graph.CSR) *Forest {
	visited := make([]bool, g.N)
	f := &Forest{}
	var h primHeap
	for s := int32(0); s < g.N; s++ {
		if visited[s] {
			continue
		}
		f.Components++
		visited[s] = true
		pushArcs(g, s, visited, &h)
		for h.Len() > 0 {
			it := heap.Pop(&h).(primItem)
			if visited[it.to] {
				continue
			}
			visited[it.to] = true
			f.EdgeIDs = append(f.EdgeIDs, g.EID[it.arc])
			f.TotalWeight += it.w
			pushArcs(g, it.to, visited, &h)
		}
	}
	f.sortIDs()
	return f
}

func pushArcs(g *graph.CSR, u int32, visited []bool, h *primHeap) {
	lo, hi := g.Arcs(u)
	for a := lo; a < hi; a++ {
		if !visited[g.Dst[a]] {
			heap.Push(h, primItem{w: g.W[a], arc: a, to: g.Dst[a]})
		}
	}
}

// Boruvka computes the MSF with the classic sequential Boruvka iteration:
// per round, every component selects its lightest outgoing edge, then the
// selected edges are contracted.
func Boruvka(el *graph.EdgeList) *Forest {
	n := int(el.N)
	d := dsu.New(n)
	f := &Forest{}
	best := make([]int32, n) // per-root best edge index, -1 if none
	for {
		for i := range best {
			best[i] = -1
		}
		found := false
		for i := range el.Edges {
			e := &el.Edges[i]
			ru, rv := d.Find(e.U), d.Find(e.V)
			if ru == rv {
				continue
			}
			found = true
			for _, r := range [2]int32{ru, rv} {
				if best[r] < 0 || graph.WeightLess(e.W, el.Edges[best[r]].W) {
					best[r] = int32(i)
				}
			}
		}
		if !found {
			break
		}
		for r, bi := range best {
			if bi < 0 || d.Find(int32(r)) != int32(r) {
				// Either no outgoing edge or this root was absorbed earlier
				// in this contraction sweep; its best edge may already be
				// taken via the other endpoint, which is fine: we re-check
				// with Union below when visiting that endpoint's root.
				if bi < 0 {
					continue
				}
			}
			e := &el.Edges[bi]
			if d.Union(e.U, e.V) {
				f.EdgeIDs = append(f.EdgeIDs, e.ID)
				f.TotalWeight += e.W
			}
		}
	}
	f.Components = n - len(f.EdgeIDs)
	f.sortIDs()
	return f
}

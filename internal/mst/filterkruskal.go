package mst

import (
	"sort"

	"mndmst/internal/dsu"
	"mndmst/internal/graph"
)

// FilterKruskal computes the MSF with the filter-Kruskal algorithm
// (Osipov, Sanders, Singler 2009): quickselect-style partitioning by a
// pivot weight, recursing on the light half first and filtering out edges
// whose endpoints are already connected before touching the heavy half.
// On random weights it approaches O(E + V log V log(E/V)) and serves as a
// third, structurally different reference implementation for
// cross-checking.
func FilterKruskal(el *graph.EdgeList) *Forest {
	idx := make([]int32, 0, len(el.Edges))
	for i := range el.Edges {
		if el.Edges[i].U != el.Edges[i].V {
			idx = append(idx, int32(i))
		}
	}
	d := dsu.New(int(el.N))
	f := &Forest{}
	filterKruskal(el, idx, d, f)
	f.Components = int(el.N) - len(f.EdgeIDs)
	f.sortIDs()
	return f
}

// kruskalThreshold is the subproblem size below which plain sort+Kruskal
// takes over.
const kruskalThreshold = 64

func filterKruskal(el *graph.EdgeList, idx []int32, d *dsu.DSU, f *Forest) {
	if len(idx) == 0 {
		return
	}
	if len(idx) <= kruskalThreshold {
		sort.Slice(idx, func(i, j int) bool { return graph.WeightLess(el.Edges[idx[i]].W, el.Edges[idx[j]].W) })
		for _, i := range idx {
			e := &el.Edges[i]
			if d.Union(e.U, e.V) {
				f.EdgeIDs = append(f.EdgeIDs, e.ID)
				f.TotalWeight += e.W
			}
		}
		return
	}
	// Median-of-three pivot on weights (all distinct).
	pivot := medianOfThree(el, idx)
	light := make([]int32, 0, len(idx)/2)
	heavy := make([]int32, 0, len(idx)/2)
	for _, i := range idx {
		if !graph.WeightLess(pivot, el.Edges[i].W) { // W <= pivot
			light = append(light, i)
		} else {
			heavy = append(heavy, i)
		}
	}
	filterKruskal(el, light, d, f)
	// Filter: drop heavy edges already internal to a component.
	kept := heavy[:0]
	for _, i := range heavy {
		e := &el.Edges[i]
		if !d.Same(e.U, e.V) {
			kept = append(kept, i)
		}
	}
	filterKruskal(el, kept, d, f)
}

func medianOfThree(el *graph.EdgeList, idx []int32) uint64 {
	a := el.Edges[idx[0]].W
	b := el.Edges[idx[len(idx)/2]].W
	c := el.Edges[idx[len(idx)-1]].W
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

package mst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mndmst/internal/gen"
	"mndmst/internal/graph"
	"mndmst/internal/testutil"
)

func TestFilterKruskalKnownGraph(t *testing.T) {
	el := knownGraph()
	f := FilterKruskal(el)
	if !Kruskal(el).Equal(f) {
		t.Fatalf("filter-kruskal forest=%+v", f)
	}
	if err := VerifyForest(el, f); err != nil {
		t.Fatal(err)
	}
}

func TestFilterKruskalMatchesKruskalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(2 + rng.Intn(150))
		m := rng.Intn(int(n) * 5)
		el := gen.ErdosRenyi(n, m, seed)
		return Kruskal(el).Equal(FilterKruskal(el))
	}
	if err := quick.Check(f, testutil.Quick(t, 1, 40)); err != nil {
		t.Fatal(err)
	}
}

func TestFilterKruskalLargeRecursion(t *testing.T) {
	// Big enough to take the recursive path several levels deep.
	big := gen.WebGraph(4096, 60_000, 0.8, 17)
	if !Kruskal(big).Equal(FilterKruskal(big)) {
		t.Fatal("filter-kruskal disagrees on a large graph")
	}
	road := gen.RoadNetwork(2500, 19)
	if !Kruskal(road).Equal(FilterKruskal(road)) {
		t.Fatal("filter-kruskal disagrees on road network")
	}
}

func TestFilterKruskalDegenerate(t *testing.T) {
	empty := FilterKruskal(&graph.EdgeList{N: 0})
	if len(empty.EdgeIDs) != 0 || empty.Components != 0 {
		t.Fatalf("empty forest=%+v", empty)
	}
	loops := FilterKruskal(&graph.EdgeList{N: 2, Edges: []graph.Edge{
		{U: 0, V: 0, W: graph.MakeWeight(1, 0), ID: 0},
		{U: 1, V: 1, W: graph.MakeWeight(2, 1), ID: 1},
	}})
	if len(loops.EdgeIDs) != 0 || loops.Components != 2 {
		t.Fatalf("loops forest=%+v", loops)
	}
}

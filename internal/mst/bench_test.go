package mst

import (
	"testing"

	"mndmst/internal/gen"
	"mndmst/internal/graph"
)

func BenchmarkKruskal(b *testing.B) {
	el := gen.WebGraph(1<<14, 1<<18, 0.85, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kruskal(el)
	}
}

func BenchmarkPrim(b *testing.B) {
	el := gen.WebGraph(1<<14, 1<<18, 0.85, 3)
	g := graph.MustBuildCSR(el)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prim(g)
	}
}

func BenchmarkSequentialBoruvka(b *testing.B) {
	el := gen.WebGraph(1<<14, 1<<18, 0.85, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Boruvka(el)
	}
}

func BenchmarkFilterKruskal(b *testing.B) {
	el := gen.WebGraph(1<<14, 1<<18, 0.85, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FilterKruskal(el)
	}
}

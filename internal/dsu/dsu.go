// Package dsu implements disjoint-set union (union-find) structures.
//
// Two variants are provided: DSU, a sequential structure with path halving
// and union by rank, used by the reference MST algorithms; and Concurrent, a
// lock-free parent array with CAS hooking and pointer jumping, matching the
// component-tracking approach the paper's device Boruvka kernels use on both
// CPU (Galois-style) and GPU.
package dsu

// DSU is a sequential disjoint-set forest with path halving and union by
// rank. Not safe for concurrent use.
type DSU struct {
	parent []int32
	rank   []int8
	sets   int32
}

// New creates a DSU over n singleton elements.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   int32(n),
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Find returns the representative of x's set, compressing the path by
// halving.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing a and b. It returns true if they were in
// different sets (i.e. a merge happened).
func (d *DSU) Union(a, b int32) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	d.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }

// Sets reports the current number of disjoint sets.
func (d *DSU) Sets() int { return int(d.sets) }

// Len reports the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

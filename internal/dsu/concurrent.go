package dsu

import (
	"sync/atomic"

	"mndmst/internal/parutil"
)

// Concurrent is a lock-free disjoint-set forest over int32 elements. Find
// performs wait-free path reads with best-effort compression via CAS;
// Hook attaches one root under another with CAS, the primitive GPU Boruvka
// implementations use for component merging. After a round of hooks,
// Flatten performs the pointer-jumping pass that collapses every tree to
// depth one, exactly as in the kernels of §3.5.
type Concurrent struct {
	parent []atomic.Int32
}

// NewConcurrent creates a concurrent DSU over n singleton elements.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{parent: make([]atomic.Int32, n)}
	parutil.For(n, 1<<14, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.parent[i].Store(int32(i))
		}
	})
	return c
}

// Len reports the number of elements.
func (c *Concurrent) Len() int { return len(c.parent) }

// Reset returns every element to a singleton set.
func (c *Concurrent) Reset() {
	parutil.For(len(c.parent), 1<<14, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.parent[i].Store(int32(i))
		}
	})
}

// Find returns the current root of x. Concurrent hooks may move the root;
// callers that need a stable answer synchronize externally (the kernels
// call Find only between phases or idempotently).
func (c *Concurrent) Find(x int32) int32 {
	for {
		p := c.parent[x].Load()
		if p == x {
			return x
		}
		gp := c.parent[p].Load()
		if gp == p {
			return p
		}
		// Path halving: splice x up one level; harmless if it races.
		c.parent[x].CompareAndSwap(p, gp)
		x = gp
	}
}

// SameNow reports whether a and b currently share a root. Under concurrent
// modification the answer is a snapshot.
func (c *Concurrent) SameNow(a, b int32) bool { return c.Find(a) == c.Find(b) }

// Hook makes root a child of under, succeeding only if a is still a root.
// Returns true on success. Symmetry breaking (e.g. only hooking the larger
// root under the smaller) is the caller's responsibility.
func (c *Concurrent) Hook(a, under int32) bool {
	return c.parent[a].CompareAndSwap(a, under)
}

// TryUnion merges the sets of a and b lock-free, retrying through races. It
// returns the surviving root and true if a merge happened, or the common
// root and false if they were already joined. Roots are ordered so the
// smaller id wins, giving deterministic representatives.
func (c *Concurrent) TryUnion(a, b int32) (root int32, merged bool) {
	for {
		ra, rb := c.Find(a), c.Find(b)
		if ra == rb {
			return ra, false
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		if c.Hook(rb, ra) {
			return ra, true
		}
	}
}

// Flatten collapses every tree to depth one by parallel pointer jumping.
// Must not run concurrently with hooks.
func (c *Concurrent) Flatten() {
	parutil.For(len(c.parent), 1<<13, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x := int32(i)
			r := x
			for {
				p := c.parent[r].Load()
				if p == r {
					break
				}
				r = p
			}
			c.parent[x].Store(r)
		}
	})
}

// Parent returns the current parent pointer of x (not necessarily the
// root).
func (c *Concurrent) Parent(x int32) int32 { return c.parent[x].Load() }

// SetParent forcibly points x at p. Used when installing externally computed
// component labels (e.g. after a merge phase imports remote parents).
func (c *Concurrent) SetParent(x, p int32) { c.parent[x].Store(p) }

// Roots returns the sorted-by-position list of elements that are their own
// parent. Call after Flatten for the component representative set.
func (c *Concurrent) Roots() []int32 {
	var roots []int32
	for i := range c.parent {
		if c.parent[i].Load() == int32(i) {
			roots = append(roots, int32(i))
		}
	}
	return roots
}

// CountSets returns the number of roots. Call after Flatten (or any
// quiescent point) for an exact answer.
func (c *Concurrent) CountSets() int {
	return int(parutil.CountIf(len(c.parent), 1<<13, func(i int) bool {
		return c.parent[i].Load() == int32(i)
	}))
}

package dsu

import (
	"math/rand"
	"mndmst/internal/testutil"
	"sync"
	"testing"
	"testing/quick"
)

func TestConcurrentSingletons(t *testing.T) {
	c := NewConcurrent(8)
	if c.Len() != 8 {
		t.Fatalf("len=%d", c.Len())
	}
	for i := int32(0); i < 8; i++ {
		if c.Find(i) != i {
			t.Fatalf("Find(%d)=%d", i, c.Find(i))
		}
	}
	if c.CountSets() != 8 {
		t.Fatalf("sets=%d", c.CountSets())
	}
}

func TestConcurrentTryUnionDeterministicRoot(t *testing.T) {
	c := NewConcurrent(4)
	root, merged := c.TryUnion(3, 1)
	if !merged || root != 1 {
		t.Fatalf("root=%d merged=%v; smaller id should win", root, merged)
	}
	root, merged = c.TryUnion(3, 1)
	if merged || root != 1 {
		t.Fatalf("second union root=%d merged=%v", root, merged)
	}
}

func TestConcurrentHookOnlyOnRoots(t *testing.T) {
	c := NewConcurrent(3)
	if !c.Hook(2, 1) {
		t.Fatal("hooking a root should succeed")
	}
	if c.Hook(2, 0) {
		t.Fatal("hooking a non-root should fail")
	}
}

func TestConcurrentFlattenDepthOne(t *testing.T) {
	const n = 5000
	c := NewConcurrent(n)
	for i := int32(1); i < n; i++ {
		c.TryUnion(i-1, i)
	}
	c.Flatten()
	for i := int32(0); i < n; i++ {
		p := c.Parent(i)
		if c.Parent(p) != p {
			t.Fatalf("element %d not depth-1 after Flatten (parent %d, grandparent %d)", i, p, c.Parent(p))
		}
	}
	if c.CountSets() != 1 {
		t.Fatalf("sets=%d want 1", c.CountSets())
	}
	if roots := c.Roots(); len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots=%v want [0]", roots)
	}
}

func TestConcurrentParallelUnionsMatchSequential(t *testing.T) {
	const n = 20_000
	// Build a random edge set; union it both sequentially and concurrently
	// and compare the resulting partitions.
	rng := testutil.Rand(t, 42)
	type edge struct{ a, b int32 }
	edges := make([]edge, 3*n)
	for i := range edges {
		edges[i] = edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}

	seq := New(n)
	for _, e := range edges {
		seq.Union(e.a, e.b)
	}

	con := NewConcurrent(n)
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(edges); i += workers {
				con.TryUnion(edges[i].a, edges[i].b)
			}
		}(w)
	}
	wg.Wait()
	con.Flatten()

	if got, want := con.CountSets(), seq.Sets(); got != want {
		t.Fatalf("concurrent sets=%d sequential sets=%d", got, want)
	}
	// Same partition: representative-to-representative mapping must be a
	// bijection consistent across all elements.
	seqToCon := make(map[int32]int32)
	conToSeq := make(map[int32]int32)
	for i := int32(0); i < n; i++ {
		s, c := seq.Find(i), con.Find(i)
		if prev, ok := seqToCon[s]; ok && prev != c {
			t.Fatalf("element %d: seq root %d maps to both %d and %d", i, s, prev, c)
		}
		if prev, ok := conToSeq[c]; ok && prev != s {
			t.Fatalf("element %d: con root %d maps to both %d and %d", i, c, prev, s)
		}
		seqToCon[s] = c
		conToSeq[c] = s
	}
}

func TestConcurrentSetParentAndReset(t *testing.T) {
	c := NewConcurrent(4)
	c.SetParent(3, 0)
	if c.Find(3) != 0 {
		t.Fatalf("Find(3)=%d", c.Find(3))
	}
	c.Reset()
	if c.Find(3) != 3 || c.CountSets() != 4 {
		t.Fatal("reset failed")
	}
}

func TestConcurrentPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		c := NewConcurrent(n)
		d := New(n)
		for op := 0; op < 100; op++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			_, cm := c.TryUnion(a, b)
			dm := d.Union(a, b)
			if cm != dm {
				return false
			}
		}
		c.Flatten()
		for x := int32(0); x < int32(n); x++ {
			for y := int32(0); y < int32(n); y++ {
				if c.SameNow(x, y) != d.Same(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.Quick(t, 1, 30)); err != nil {
		t.Fatal(err)
	}
}

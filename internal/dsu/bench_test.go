package dsu

import (
	"math/rand"
	"testing"
)

func BenchmarkSequentialUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]int32, n)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(n)
		for _, p := range pairs {
			d.Union(p[0], p[1])
		}
	}
}

func BenchmarkConcurrentUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]int32, n)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewConcurrent(n)
		for _, p := range pairs {
			c.TryUnion(p[0], p[1])
		}
		c.Flatten()
	}
}

package dsu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDSUSingletons(t *testing.T) {
	d := New(5)
	if d.Sets() != 5 || d.Len() != 5 {
		t.Fatalf("sets=%d len=%d", d.Sets(), d.Len())
	}
	for i := int32(0); i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("Find(%d)=%d", i, d.Find(i))
		}
	}
}

func TestDSUUnionFind(t *testing.T) {
	d := New(6)
	if !d.Union(0, 1) {
		t.Fatal("first union failed")
	}
	if d.Union(1, 0) {
		t.Fatal("repeated union reported a merge")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if !d.Same(1, 2) {
		t.Fatal("1 and 2 should be joined")
	}
	if d.Same(1, 4) {
		t.Fatal("1 and 4 should be separate")
	}
	if d.Sets() != 3 {
		t.Fatalf("sets=%d want 3", d.Sets())
	}
}

func TestDSUChainCompression(t *testing.T) {
	const n = 10000
	d := New(n)
	for i := int32(1); i < n; i++ {
		d.Union(i-1, i)
	}
	if d.Sets() != 1 {
		t.Fatalf("sets=%d", d.Sets())
	}
	root := d.Find(0)
	for i := int32(0); i < n; i++ {
		if d.Find(i) != root {
			t.Fatalf("element %d has root %d want %d", i, d.Find(i), root)
		}
	}
}

// brute is a reference connectivity oracle using component labels.
type brute struct{ label []int }

func newBrute(n int) *brute {
	b := &brute{label: make([]int, n)}
	for i := range b.label {
		b.label[i] = i
	}
	return b
}

func (b *brute) union(x, y int32) {
	lx, ly := b.label[x], b.label[y]
	if lx == ly {
		return
	}
	for i, l := range b.label {
		if l == ly {
			b.label[i] = lx
		}
	}
}

func (b *brute) same(x, y int32) bool { return b.label[x] == b.label[y] }

func TestDSUMatchesBruteForceOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		d := New(n)
		b := newBrute(n)
		for op := 0; op < 200; op++ {
			x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
			if rng.Intn(2) == 0 {
				d.Union(x, y)
				b.union(x, y)
			} else if d.Same(x, y) != b.same(x, y) {
				return false
			}
		}
		// Final full cross-check.
		for x := int32(0); x < int32(n); x++ {
			for y := int32(0); y < int32(n); y++ {
				if d.Same(x, y) != b.same(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package retry

import (
	"context"
	"sync"
	"time"
)

// SimClock is a virtual Clock for policy tests: Sleep advances the clock
// instantly instead of waiting, and every requested duration is recorded,
// so a whole backoff schedule — budgets and deadline clamps included —
// is assertable without wall time. Safe for concurrent use.
type SimClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewSimClock returns a SimClock starting at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now returns the virtual time.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d (recording the request) unless ctx is
// already done, in which case it returns ctx.Err() without advancing —
// mirroring a real sleep interrupted at its start.
func (c *SimClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	c.sleeps = append(c.sleeps, d)
	return nil
}

// Advance moves virtual time forward without recording a sleep (e.g. to
// model time spent inside an attempt).
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Sleeps returns a copy of every duration passed to Sleep, in order.
func (c *SimClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.sleeps))
	copy(out, c.sleeps)
	return out
}

// Package retry is the shared fault-recovery policy engine: exponential
// backoff with deterministic, seedable jitter, attempt budgets, and
// deadline clamping, plus the error-classification contract every layer
// agrees on.
//
// Classification is a capability, not a registry: a typed error opts into
// re-execution by implementing
//
//	interface{ IsTransient() bool }
//
// and Transient walks the whole wrapped tree (errors.Join included). The
// transport's PeerDeadError, the cluster's RankLostError/AbortError, and
// the chaos layer's injected faults classify transient — a fresh execution
// over fresh links may succeed. Protocol and validation errors implement
// nothing and stay permanent: retrying a version mismatch reproduces it.
// Permanent wraps any error so an engine stops retrying it (an explicit
// false beats every true in the tree).
//
// Policies are sim-clock compatible: every time read and every sleep goes
// through the Clock interface, so backoff schedules, budgets, and deadline
// clamping are unit-testable in virtual time (SimClock) while production
// callers use the wall clock. Backoff alone — the jittered schedule — is
// usable by loops that cannot adopt Do (the transport's dial/rendezvous
// loops select on their own teardown channels).
package retry

import (
	"context"
	"errors"
	"time"
)

// transient is the classification capability typed errors implement.
type transient interface {
	IsTransient() bool
}

// Transient reports whether err is worth re-executing: at least one error
// in its wrapped tree (Unwrap() error and Unwrap() []error are both
// followed) reports IsTransient() == true and none reports an explicit
// false. An explicit false — the Permanent wrapper, or a typed error that
// classifies itself permanent — wins over any number of trues: if any
// layer knows a retry cannot help, it cannot. Errors that implement
// nothing are neutral, so a nil or untyped error is permanent by default;
// context cancellation in particular never classifies transient.
func Transient(err error) bool {
	sawTransient, sawPermanent := false, false
	walk(err, func(e error) {
		if t, ok := e.(transient); ok {
			if t.IsTransient() {
				sawTransient = true
			} else {
				sawPermanent = true
			}
		}
	})
	return sawTransient && !sawPermanent
}

// walk visits every error in err's wrapped tree.
func walk(err error, visit func(error)) {
	for err != nil {
		visit(err)
		switch u := err.(type) {
		case interface{ Unwrap() error }:
			err = u.Unwrap()
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				walk(e, visit)
			}
			return
		default:
			return
		}
	}
}

// permanentError marks a (possibly transient) error permanently failed.
type permanentError struct{ err error }

func (e *permanentError) Error() string     { return e.err.Error() }
func (e *permanentError) Unwrap() error     { return e.err }
func (e *permanentError) IsTransient() bool { return false }

// Permanent wraps err so no policy engine retries it, whatever the rest of
// its chain classifies. errors.Is/As still see the full chain. The serving
// layer uses it to pin the drain rule: a draining server finishes the
// in-flight attempt but never re-admits. Permanent(nil) is nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Clock abstracts time for policy engines so schedules are testable in
// virtual time. Sleep must return early with ctx.Err() when ctx is done.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

// wallClock is the production clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wall is the real-time Clock every production policy uses.
var Wall Clock = wallClock{}

// Default policy tuning when fields are unset.
const (
	defaultBaseDelay  = 25 * time.Millisecond
	defaultMaxDelay   = time.Second
	defaultMultiplier = 2.0
)

// Policy is one retry schedule: how many attempts, how long between them,
// and how much deterministic jitter decorrelates restarting peers. The
// zero value performs exactly one attempt (no retry).
type Policy struct {
	// MaxAttempts is the total attempt budget, first try included
	// (<= 0 means 1: no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps one backoff step (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter in [0, 1] randomizes each delay downward into
	// [delay*(1-Jitter), delay]. Spreading restarts is the point: N
	// workers restarted together must not hammer a coordinator in
	// lockstep. 0 disables jitter.
	Jitter float64
	// Seed drives the jitter deterministically: same (Seed, attempt) →
	// same delay, so any schedule replays bit-identically in tests.
	// Production callers should decorrelate seeds per process.
	Seed int64
	// Budget bounds the whole engagement on the policy clock, measured
	// from Do's entry (0 = unbounded; the ctx deadline still applies).
	Budget time.Duration
	// Clock supplies time (nil = Wall).
	Clock Clock
}

func (p Policy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

func (p Policy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return defaultBaseDelay
	}
	return p.BaseDelay
}

func (p Policy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return defaultMaxDelay
	}
	return p.MaxDelay
}

func (p Policy) mult() float64 {
	if p.Multiplier <= 1 {
		return defaultMultiplier
	}
	return p.Multiplier
}

func (p Policy) clock() Clock {
	if p.Clock == nil {
		return Wall
	}
	return p.Clock
}

// splitmix64 is the avalanche mix behind the deterministic jitter draws —
// the same generator the chaos layer uses for its pure fault decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit draws the deterministic jitter fraction in [0, 1) for one
// (seed, attempt) coordinate.
func unit(seed int64, attempt int) float64 {
	x := splitmix64(splitmix64(uint64(seed)) ^ uint64(attempt+1))
	return float64(x>>11) / float64(1<<53)
}

// Backoff returns the delay before the retry following attempt (0-based:
// Backoff(0) separates attempts 1 and 2). The exponential ramp is capped
// at MaxDelay first, then jittered downward into [d*(1-Jitter), d] — a
// pure function of (Seed, attempt), so two policies sharing a seed draw
// identical schedules and two differing seeds decorrelate.
func (p Policy) Backoff(attempt int) time.Duration {
	d := float64(p.base())
	capf := float64(p.cap())
	for i := 0; i < attempt; i++ {
		d *= p.mult()
		if d >= capf {
			d = capf
			break
		}
	}
	if d > capf {
		d = capf
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		d -= d * j * unit(p.Seed, attempt)
	}
	return time.Duration(d)
}

// Do runs op under the policy: attempts are re-admitted while the error
// classifies Transient, the attempt budget lasts, the Budget (on the
// policy clock) and the ctx deadline leave room for the next backoff, and
// ctx stays alive. op receives the 0-based attempt number. The last
// attempt's error is returned; when the wait between attempts is cut short
// by ctx, the ctx error is joined in front of it (and the whole join is
// Permanent) so callers see the cancellation first and no outer policy
// retries a dead context.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context, attempt int) error) error {
	clk := p.clock()
	var budgetEnd time.Time
	if p.Budget > 0 {
		budgetEnd = clk.Now().Add(p.Budget)
	}
	max := p.attempts()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx, attempt)
		if err == nil {
			return nil
		}
		if !Transient(err) || attempt+1 >= max {
			return err
		}
		d := p.Backoff(attempt)
		if !budgetEnd.IsZero() && clk.Now().Add(d).After(budgetEnd) {
			return err
		}
		if dl, ok := ctx.Deadline(); ok && clk.Now().Add(d).After(dl) {
			return err
		}
		if serr := clk.Sleep(ctx, d); serr != nil {
			// Permanent: an interrupted engagement must never classify
			// transient, or an outer policy would re-spin a dead ctx.
			return Permanent(errors.Join(serr, err))
		}
	}
}

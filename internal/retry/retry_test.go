package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// flaky is a transient typed error for tests.
type flaky struct{ msg string }

func (e *flaky) Error() string     { return e.msg }
func (e *flaky) IsTransient() bool { return true }

// hardFail is a typed error that classifies itself permanent.
type hardFail struct{ msg string }

func (e *hardFail) Error() string     { return e.msg }
func (e *hardFail) IsTransient() bool { return false }

func TestTransientClassification(t *testing.T) {
	tr := &flaky{"link reset"}
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"untyped", errors.New("boom"), false},
		{"typed transient", tr, true},
		{"wrapped transient", fmt.Errorf("attempt 2: %w", tr), true},
		{"joined transient", errors.Join(errors.New("ctx"), tr), true},
		{"typed permanent", &hardFail{"version mismatch"}, false},
		{"permanent wrapper wins", Permanent(tr), false},
		{"wrapped permanent wrapper wins", fmt.Errorf("outer: %w", Permanent(tr)), false},
		{"joined explicit false wins", errors.Join(tr, &hardFail{"no"}), false},
		{"context canceled", context.Canceled, false},
		{"deadline exceeded", context.DeadlineExceeded, false},
	} {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("%s: Transient(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestPermanentTransparent(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatalf("Permanent(nil) != nil")
	}
	inner := &flaky{"flap"}
	p := Permanent(fmt.Errorf("try: %w", inner))
	if p.Error() != "try: flap" {
		t.Fatalf("Permanent changed the message: %q", p.Error())
	}
	var got *flaky
	if !errors.As(p, &got) || got != inner {
		t.Fatalf("errors.As does not see through Permanent")
	}
}

func TestBackoffScheduleDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond,
		Multiplier: 2, Jitter: 0.5, Seed: 42}
	q := p // same seed → identical schedule
	for attempt := 0; attempt < 12; attempt++ {
		d := p.Backoff(attempt)
		if d != q.Backoff(attempt) {
			t.Fatalf("attempt %d: same seed drew different delays", attempt)
		}
		// Un-jittered ramp: base·2^attempt capped at MaxDelay.
		full := 10 * time.Millisecond << uint(attempt)
		if full > 500*time.Millisecond || full <= 0 {
			full = 500 * time.Millisecond
		}
		lo := full / 2 // jitter 0.5 → [full/2, full]
		if d < lo || d > full {
			t.Fatalf("attempt %d: delay %v outside jitter bounds [%v, %v]", attempt, d, lo, full)
		}
	}
	// A different seed must decorrelate somewhere in the schedule.
	r := p
	r.Seed = 43
	same := true
	for attempt := 0; attempt < 12; attempt++ {
		if p.Backoff(attempt) != r.Backoff(attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 drew identical 12-step schedules")
	}
}

func TestBackoffNoJitterExactRamp(t *testing.T) {
	p := Policy{BaseDelay: 25 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{25, 50, 100, 100}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDoPolicyTable(t *testing.T) {
	transientErr := &flaky{"flap"}
	permErr := errors.New("bad input")
	for _, tc := range []struct {
		name string
		pol  Policy // Clock/Seed filled per-case
		// failures before the op starts succeeding; -1 = always fail
		failures   int
		failWith   error
		wantErr    error
		wantCalls  int
		wantSleeps int
	}{
		{name: "first try succeeds", pol: Policy{MaxAttempts: 3},
			failures: 0, wantCalls: 1, wantSleeps: 0},
		{name: "transient retried to success", pol: Policy{MaxAttempts: 4},
			failures: 2, failWith: transientErr, wantCalls: 3, wantSleeps: 2},
		{name: "attempt budget exhausted", pol: Policy{MaxAttempts: 3},
			failures: -1, failWith: transientErr, wantErr: transientErr,
			wantCalls: 3, wantSleeps: 2},
		{name: "zero policy means one attempt", pol: Policy{},
			failures: -1, failWith: transientErr, wantErr: transientErr,
			wantCalls: 1, wantSleeps: 0},
		{name: "permanent error stops immediately", pol: Policy{MaxAttempts: 5},
			failures: -1, failWith: permErr, wantErr: permErr,
			wantCalls: 1, wantSleeps: 0},
		{name: "permanent wrapper stops a transient chain", pol: Policy{MaxAttempts: 5},
			failures: -1, failWith: Permanent(transientErr), wantErr: transientErr,
			wantCalls: 1, wantSleeps: 0},
		{name: "time budget exhausted before attempts",
			pol:      Policy{MaxAttempts: 10, BaseDelay: 40 * time.Millisecond, Budget: 100 * time.Millisecond},
			failures: -1, failWith: transientErr, wantErr: transientErr,
			// sleep 40ms (t=40); next backoff 80ms would end at 120ms,
			// past the 100ms budget → stop: 2 calls, 1 sleep.
			wantCalls: 2, wantSleeps: 1},
		{name: "ctx deadline clamps next backoff",
			pol:      Policy{MaxAttempts: 10, BaseDelay: 60 * time.Millisecond},
			failures: -1, failWith: transientErr, wantErr: transientErr,
			// deadline 100ms out: sleep 60 (now 60); next 120 would land
			// at 180 > 100 → stop after 2 calls, 1 sleep.
			wantCalls: 2, wantSleeps: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The deadline case derives its ctx from context.WithDeadline,
			// which watches the wall clock — anchor virtual time to it so
			// the ctx is live while the sim clock does the clamping math.
			start := time.Now()
			clk := NewSimClock(start)
			pol := tc.pol
			pol.Clock = clk
			ctx := context.Background()
			if tc.name == "ctx deadline clamps next backoff" {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, start.Add(100*time.Millisecond))
				defer cancel()
			}
			calls := 0
			err := pol.Do(ctx, func(ctx context.Context, attempt int) error {
				if attempt != calls {
					t.Fatalf("attempt %d delivered as %d", calls, attempt)
				}
				calls++
				if tc.failures < 0 || calls <= tc.failures {
					return tc.failWith
				}
				return nil
			})
			if tc.wantErr == nil && err != nil {
				t.Fatalf("Do: %v", err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("Do = %v, want %v", err, tc.wantErr)
			}
			if calls != tc.wantCalls {
				t.Fatalf("op ran %d times, want %d", calls, tc.wantCalls)
			}
			if got := len(clk.Sleeps()); got != tc.wantSleeps {
				t.Fatalf("slept %d times (%v), want %d", got, clk.Sleeps(), tc.wantSleeps)
			}
		})
	}
}

func TestDoCanceledContextReturnsJoinedError(t *testing.T) {
	clk := NewSimClock(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	tr := &flaky{"flap"}
	calls := 0
	err := Policy{MaxAttempts: 5, Clock: clk}.Do(ctx, func(context.Context, int) error {
		calls++
		cancel() // interrupt the upcoming backoff sleep
		return tr
	})
	if calls != 1 {
		t.Fatalf("op ran %d times after cancel, want 1", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not classify as context.Canceled", err)
	}
	if !errors.Is(err, tr) {
		t.Fatalf("err %v lost the attempt's cause", err)
	}
	if Transient(err) {
		t.Fatalf("canceled join still classifies transient; retry would loop on a dead ctx")
	}
}

func TestDoPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Policy{MaxAttempts: 3, Clock: NewSimClock(time.Unix(0, 0))}.Do(ctx,
		func(context.Context, int) error {
			t.Fatalf("op ran under a dead context")
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}

func TestWallSleepInterruptible(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Wall.Sleep(ctx, time.Hour) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Wall.Sleep(1h) did not return promptly after cancel")
	}
}

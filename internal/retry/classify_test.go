package retry_test

// External test package: it imports the layers whose typed errors opt into
// the classification contract (transport itself imports retry for its
// backoff policies, so this cannot live in package retry).

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mndmst/internal/chaos"
	"mndmst/internal/cluster"
	"mndmst/internal/retry"
	"mndmst/internal/transport"
)

// TestLayerClassification pins the cross-layer contract: every typed fault
// error a failed distributed run can surface classifies transient, and the
// permanent kinds (sentinels, protocol/validation, context) never do. A
// new typed error that should trigger re-execution belongs in this table.
func TestLayerClassification(t *testing.T) {
	peerDead := &transport.PeerDeadError{Rank: 1, Cause: errors.New("conn reset")}
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"transport.PeerDeadError", peerDead, true},
		{"transport.SendQueueFullError", &transport.SendQueueFullError{Rank: 2, Wait: time.Second}, true},
		{"cluster.RankLostError", &cluster.RankLostError{Rank: 1, Op: "recv", Cause: peerDead}, true},
		{"cluster.AbortError", &cluster.AbortError{Rank: 0, Cause: peerDead}, true},
		{"chaos.CorruptFrameError", &chaos.CorruptFrameError{Src: 1, Err: errors.New("bad checksum")}, true},
		{"chaos.FrameLossError", &chaos.FrameLossError{Src: 1, Want: 7, Buffered: 3}, true},
		{"chaos.DeadlineError", &chaos.DeadlineError{Src: 0, Want: 9, Timeout: time.Second}, true},
		{"chaos.CrashStopError", &chaos.CrashStopError{Rank: 2, Step: 40}, true},
		{"wrapped rank loss", fmt.Errorf("run failed: %w", &cluster.RankLostError{Rank: 3, Op: "send", Cause: transport.ErrClosed}), true},
		{"transport.ErrClosed sentinel", transport.ErrClosed, false},
		{"context.Canceled", context.Canceled, false},
		{"context.DeadlineExceeded", context.DeadlineExceeded, false},
		{"plain validation error", errors.New("mndmst: nodes must be >= 1"), false},
	} {
		if got := retry.Transient(tc.err); got != tc.want {
			t.Errorf("%s: Transient = %v, want %v", tc.name, got, tc.want)
		}
	}
}

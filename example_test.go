package mndmst_test

import (
	"fmt"
	"strings"

	"mndmst"
)

// The basic flow: build a graph, run MND-MST on a simulated cluster,
// verify the forest is exact.
func ExampleFindMSF() {
	g, _ := mndmst.NewGraph(4, []mndmst.Edge{
		{U: 0, V: 1, Weight: 4},
		{U: 1, V: 2, Weight: 2},
		{U: 2, V: 3, Weight: 7},
		{U: 3, V: 0, Weight: 1},
		{U: 0, V: 2, Weight: 5},
	})
	res, err := mndmst.FindMSF(g, mndmst.Options{Nodes: 2})
	if err != nil {
		panic(err)
	}
	if err := mndmst.Verify(g, res); err != nil {
		panic(err)
	}
	fmt.Println("edges:", len(res.EdgeIDs), "components:", res.Components)
	// Output: edges: 3 components: 1
}

// Comparing MND-MST with the Pregel+-style BSP baseline on the same
// workload: both compute the identical forest, but with very different
// communication behaviour.
func ExampleFindMSFBSP() {
	g := mndmst.GenerateWebGraph(2000, 20_000, 0.85, 7)
	mnd, _ := mndmst.FindMSF(g, mndmst.Options{Nodes: 8})
	bsp, _ := mndmst.FindMSFBSP(g, mndmst.Options{Nodes: 8})
	fmt.Println("same forest:", mnd.TotalWeight == bsp.TotalWeight)
	fmt.Println("BSP messages more:", bsp.MessagesSent > mnd.MessagesSent)
	// Output:
	// same forest: true
	// BSP messages more: true
}

// Generating one of the paper's Table 2 workload analogues.
func ExampleGenerateProfile() {
	g, err := mndmst.GenerateProfile("road_usa", 0.1)
	if err != nil {
		panic(err)
	}
	st := g.ComputeStats()
	fmt.Println("connected:", st.Components == 1)
	fmt.Printf("avg degree: %.1f\n", st.AvgDegree)
	// Output:
	// connected: true
	// avg degree: 2.4
}

// Connected components reuse the MND-MST pipeline.
func ExampleFindConnectedComponents() {
	g, _ := mndmst.NewGraph(5, []mndmst.Edge{
		{U: 0, V: 1, Weight: 1},
		{U: 3, V: 4, Weight: 2},
	})
	res, _ := mndmst.FindConnectedComponents(g, mndmst.Options{Nodes: 2})
	fmt.Println("components:", res.Components, "labels:", res.Label)
	// Output: components: 3 labels: [0 0 2 3 3]
}

// Distributed BFS on the same simulated cluster.
func ExampleBFS() {
	g := mndmst.GenerateRoadNetwork(400, 3)
	res, _ := mndmst.BFS(g, mndmst.Options{Nodes: 4}, 0)
	fmt.Println("source distance:", res.Dist[0], "levels > 10:", res.Levels > 10)
	// Output: source distance: 0 levels > 10: true
}

// Jones–Plassmann coloring is partition-independent for a fixed seed.
func ExampleColoring() {
	g := mndmst.GenerateWebGraph(500, 3000, 0.8, 5)
	one, _ := mndmst.Coloring(g, mndmst.Options{Nodes: 1}, 9)
	four, _ := mndmst.Coloring(g, mndmst.Options{Nodes: 4}, 9)
	same := true
	for v := range one.Color {
		if one.Color[v] != four.Color[v] {
			same = false
		}
	}
	fmt.Println("identical across rank counts:", same)
	// Output: identical across rank counts: true
}

// Run traces export per-rank accounting for offline analysis.
func ExampleRunTrace() {
	g := mndmst.GenerateWebGraph(2000, 16_000, 0.85, 11)
	res, _ := mndmst.FindMSF(g, mndmst.Options{Nodes: 4})
	var buf strings.Builder
	_ = res.Trace.WriteCSV(&buf)
	fmt.Println(strings.SplitN(buf.String(), "\n", 2)[0])
	// Output: rank,phase,compute_s,comm_s,bytes_sent,msgs
}

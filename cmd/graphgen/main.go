// Command graphgen generates the synthetic workload graphs used by the
// reproduction and writes them in the binary container format (or the
// SNAP-style text format) that cmd/mndmst reads.
//
// Usage:
//
//	graphgen -profile uk-2007 -scale 1.0 -out uk-2007.mnd
//	graphgen -kind web -n 100000 -m 3000000 -locality 0.85 -out web.mnd
//	graphgen -kind road -n 24000 -out road.mnd
//	graphgen -kind ba -n 10000 -m 4 -out ba.mnd -format text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mndmst"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		profile  = fs.String("profile", "", "generate a paper workload profile (road_usa, ...)")
		scale    = fs.Float64("scale", 1.0, "profile scale")
		kind     = fs.String("kind", "web", "custom generator: web | road | rmat | ba | ws")
		n        = fs.Int("n", 10000, "vertices (custom generators)")
		m        = fs.Int("m", 100000, "edges (web/rmat), edges-per-vertex (ba), neighbours (ws)")
		locality = fs.Float64("locality", 0.85, "fraction of short-range edges (web)")
		beta     = fs.Float64("beta", 0.1, "rewiring probability (ws)")
		seed     = fs.Int64("seed", 1, "random seed")
		outPath  = fs.String("out", "graph.mnd", "output file")
		format   = fs.String("format", "binary", "output format: binary | text")
		stats    = fs.Bool("stats", true, "print Table 2 statistics of the generated graph")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *mndmst.Graph
	var err error
	switch {
	case *profile != "":
		g, err = mndmst.GenerateProfile(*profile, *scale)
	case *kind == "road":
		g = mndmst.GenerateRoadNetwork(*n, *seed)
	case *kind == "rmat":
		g = mndmst.GenerateRMAT(int32(*n), *m, *seed)
	case *kind == "web":
		g = mndmst.GenerateWebGraph(int32(*n), *m, *locality, *seed)
	case *kind == "ba":
		g = mndmst.GenerateBarabasiAlbert(int32(*n), *m, *seed)
	case *kind == "ws":
		g = mndmst.GenerateWattsStrogatz(int32(*n), *m, *beta, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	switch *format {
	case "binary":
		err = mndmst.SaveGraph(*outPath, g)
	case "text":
		err = mndmst.SaveTextGraph(*outPath, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d vertices, %d edges\n", *outPath, g.NumVertices(), g.NumEdges())
	if *stats {
		st := g.ComputeStats()
		fmt.Fprintf(out, "avg degree %.2f  max degree %d  approx diameter %d  components %d\n",
			st.AvgDegree, st.MaxDegree, st.ApproxDiam, st.Components)
	}
	return nil
}

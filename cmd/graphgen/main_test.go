package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range [][]string{
		{"-profile", "road_usa", "-scale", "0.05"},
		{"-kind", "web", "-n", "500", "-m", "2000"},
		{"-kind", "road", "-n", "400"},
		{"-kind", "rmat", "-n", "256", "-m", "1024"},
		{"-kind", "ba", "-n", "500", "-m", "3"},
		{"-kind", "ws", "-n", "500", "-m", "4", "-beta", "0.2"},
	} {
		out := filepath.Join(dir, strings.Join(tc, "_")+".mnd")
		var buf strings.Builder
		if err := run(append(tc, "-out", out), &buf); err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if !strings.Contains(buf.String(), "wrote") || !strings.Contains(buf.String(), "avg degree") {
			t.Fatalf("%v: output %q", tc, buf.String())
		}
		if _, err := os.Stat(out); err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
	}
}

func TestGenerateTextFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.txt")
	var buf strings.Builder
	if err := run([]string{"-kind", "web", "-n", "100", "-m", "300", "-format", "text", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# mndmst edge list") {
		t.Fatalf("text header: %q", string(data[:40]))
	}
}

func TestGenerateErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-kind", "torus"}, &buf); err == nil {
		t.Fatal("bad kind accepted")
	}
	if err := run([]string{"-format", "xml"}, &buf); err == nil {
		t.Fatal("bad format accepted")
	}
	if err := run([]string{"-profile", "nope"}, &buf); err == nil {
		t.Fatal("bad profile accepted")
	}
	if err := run([]string{"-out", "/nonexistent-dir/g.mnd", "-kind", "road", "-n", "50"}, &buf); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

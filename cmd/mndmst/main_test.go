package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "uk-2007") {
		t.Fatalf("list output: %q", out.String())
	}
}

func TestRunProfileVerify(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-profile", "road_usa", "-scale", "0.05", "-nodes", "3", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graph:", "forest:", "simulated:", "verified: exact"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBSPAndSeq(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-profile", "road_usa", "-scale", "0.03", "-system", "bsp", "-nodes", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", "road_usa", "-scale", "0.03", "-system", "seq"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunTextInputAndTrace(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(text, []byte("0 1 4\n1 2 2\n2 0 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	traceFile := filepath.Join(dir, "t.jsonl")
	var out strings.Builder
	err := run([]string{"-text", text, "-nodes", "2", "-trace", traceFile, "-rankprofile", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "load balance") {
		t.Fatal("rank profile missing")
	}
	data, err := os.ReadFile(traceFile)
	if err != nil || !strings.Contains(string(data), `"kind":"rank"`) {
		t.Fatalf("trace file: %v %q", err, data)
	}
}

func TestRunGPUCray(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-profile", "arabic-2005", "-scale", "0.05", "-machine", "cray", "-gpu", "-gpus", "2", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-machine", "vax"}, &out); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := run([]string{"-system", "magic"}, &out); err == nil {
		t.Fatal("bad system accepted")
	}
	if err := run([]string{"-profile", "nope"}, &out); err == nil {
		t.Fatal("bad profile accepted")
	}
	if err := run([]string{"-input", filepath.Join(t.TempDir(), "missing")}, &out); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunApps(t *testing.T) {
	for _, app := range []string{"bfs", "sssp", "pagerank", "coloring", "cc"} {
		var out strings.Builder
		err := run([]string{"-profile", "road_usa", "-scale", "0.03", "-nodes", "3", "-app", app}, &out)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if !strings.Contains(out.String(), "simulated") {
			t.Fatalf("%s: output %q", app, out.String())
		}
	}
	var out strings.Builder
	if err := run([]string{"-app", "magic"}, &out); err == nil {
		t.Fatal("unknown app accepted")
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mndmst/internal/obs"
)

// TestMain lets the test binary double as a -launch worker: launchLocal
// re-execs os.Executable(), which under `go test` is this binary. Worker
// children are recognized by the coordinator env var before the testing
// framework parses any flags.
func TestMain(m *testing.M) {
	if os.Getenv(workerCoordEnv) != "" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mndmst:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestLaunchLocalForksWorkers(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-launch", "local:3", "-profile", "road_usa", "-scale", "0.03", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"launch: 3 workers via coordinator",
		"graph:", "forest:", "simulated:",
		"real:", "wall", // multi-process runs report real elapsed time
		"verified: exact minimum spanning forest",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// Exactly one worker (rank 0) prints the summary.
	if got := strings.Count(out.String(), "forest:"); got != 1 {
		t.Fatalf("%d forest lines (want 1):\n%s", got, out.String())
	}
}

func TestLaunchLocalMatchesInProcessForest(t *testing.T) {
	args := []string{"-profile", "arabic-2005", "-scale", "0.05"}
	var inproc strings.Builder
	if err := run(append([]string{"-nodes", "4"}, args...), &inproc); err != nil {
		t.Fatal(err)
	}
	var tcp strings.Builder
	if err := run(append([]string{"-launch", "local:4"}, args...), &tcp); err != nil {
		t.Fatal(err)
	}
	pick := func(s, prefix string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, prefix) {
				return line
			}
		}
		return ""
	}
	forestIn, forestTCP := pick(inproc.String(), "forest:"), pick(tcp.String(), "forest:")
	if forestIn == "" || forestIn != forestTCP {
		t.Fatalf("forest lines diverge:\n  in-process: %s\n  tcp:        %s", forestIn, forestTCP)
	}
	simIn, simTCP := pick(inproc.String(), "simulated:"), pick(tcp.String(), "simulated:")
	if simIn == "" || simIn != simTCP {
		t.Fatalf("simulated lines diverge:\n  in-process: %s\n  tcp:        %s", simIn, simTCP)
	}
}

func TestLaunchRejectsBadSpecs(t *testing.T) {
	for _, args := range [][]string{
		{"-launch", "local:0"},
		{"-launch", "local:-2"},
		{"-launch", "slurm:4"},
		{"-launch", "local:2", "-system", "bsp"},
		{"-launch", "local:2", "-app", "bfs"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "uk-2007") {
		t.Fatalf("list output: %q", out.String())
	}
}

func TestRunProfileVerify(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-profile", "road_usa", "-scale", "0.05", "-nodes", "3", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graph:", "forest:", "simulated:", "verified: exact"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBSPAndSeq(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-profile", "road_usa", "-scale", "0.03", "-system", "bsp", "-nodes", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", "road_usa", "-scale", "0.03", "-system", "seq"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunTextInputAndTrace(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(text, []byte("0 1 4\n1 2 2\n2 0 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	traceFile := filepath.Join(dir, "t.jsonl")
	var out strings.Builder
	err := run([]string{"-text", text, "-nodes", "2", "-trace", traceFile, "-rankprofile", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "load balance") {
		t.Fatal("rank profile missing")
	}
	data, err := os.ReadFile(traceFile)
	if err != nil || !strings.Contains(string(data), `"kind":"rank"`) {
		t.Fatalf("trace file: %v %q", err, data)
	}
}

// TestRunJSON: -json emits exactly one record in the serve schema, with
// nothing else on the stream, and agrees with the text run.
func TestRunJSON(t *testing.T) {
	args := []string{"-profile", "road_usa", "-scale", "0.03", "-nodes", "3"}
	var jsonBuf strings.Builder
	if err := run(append(append([]string{}, args...), "-json", "-verify"), &jsonBuf); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		GraphDigest        string  `json:"graph_digest"`
		Vertices           int     `json:"vertices"`
		Edges              int     `json:"edges"`
		System             string  `json:"system"`
		OptionsFingerprint string  `json:"options_fingerprint"`
		ForestEdges        int     `json:"forest_edges"`
		Components         int     `json:"components"`
		TotalWeight        uint64  `json:"total_weight"`
		SimSeconds         float64 `json:"sim_seconds"`
		EdgeIDs            []int32 `json:"edge_ids"`
	}
	if err := json.Unmarshal([]byte(jsonBuf.String()), &rec); err != nil {
		t.Fatalf("-json output is not a single JSON record: %v\n%s", err, jsonBuf.String())
	}
	if !strings.HasPrefix(rec.GraphDigest, "sha256:") || rec.System != "mnd" ||
		!strings.Contains(rec.OptionsFingerprint, "nodes=3") {
		t.Fatalf("record: %+v", rec)
	}
	if rec.EdgeIDs != nil {
		t.Fatal("-json leaked edge ids (summary record must omit them)")
	}
	var text strings.Builder
	if err := run(args, &text); err != nil {
		t.Fatal(err)
	}
	wantForest := fmt.Sprintf("forest: %d edges, %d components, total weight %d",
		rec.ForestEdges, rec.Components, rec.TotalWeight)
	if !strings.Contains(text.String(), wantForest) {
		t.Fatalf("text run disagrees with -json record:\nwant %q in\n%s", wantForest, text.String())
	}
	// -json composes with the other systems and rejects -app.
	var seqBuf strings.Builder
	if err := run([]string{"-profile", "road_usa", "-scale", "0.03", "-system", "seq", "-json"}, &seqBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(seqBuf.String(), `"system": "seq"`) {
		t.Fatalf("seq record: %s", seqBuf.String())
	}
	var out strings.Builder
	if err := run([]string{"-profile", "road_usa", "-app", "bfs", "-json"}, &out); err == nil {
		t.Fatal("-json with -app accepted")
	}
}

// TestLaunchLocalJSON: in multi-process mode rank 0's record is relayed
// as the sole output, so piped consumers see pure JSON.
func TestLaunchLocalJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-launch", "local:2", "-profile", "road_usa", "-scale", "0.03", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out.String()), &rec); err != nil {
		t.Fatalf("launch -json output is not pure JSON: %v\n%s", err, out.String())
	}
	if rec["wall_seconds"] == nil {
		t.Fatalf("multi-process record missing wall_seconds: %s", out.String())
	}
}

func TestRunGPUCray(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-profile", "arabic-2005", "-scale", "0.05", "-machine", "cray", "-gpu", "-gpus", "2", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-machine", "vax"}, &out); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := run([]string{"-system", "magic"}, &out); err == nil {
		t.Fatal("bad system accepted")
	}
	if err := run([]string{"-profile", "nope"}, &out); err == nil {
		t.Fatal("bad profile accepted")
	}
	if err := run([]string{"-input", filepath.Join(t.TempDir(), "missing")}, &out); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunApps(t *testing.T) {
	for _, app := range []string{"bfs", "sssp", "pagerank", "coloring", "cc"} {
		var out strings.Builder
		err := run([]string{"-profile", "road_usa", "-scale", "0.03", "-nodes", "3", "-app", app}, &out)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if !strings.Contains(out.String(), "simulated") {
			t.Fatalf("%s: output %q", app, out.String())
		}
	}
	var out strings.Builder
	if err := run([]string{"-app", "magic"}, &out); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestRunMetricsDump: -metrics-dump writes a parseable Prometheus
// exposition of the run's trace to stderr, with the rank count and phase
// gauges intact. Stderr is swapped for a pipe around the run so the dump
// can be captured without touching the normal stdout report.
func TestRunMetricsDump(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	var out strings.Builder
	runErr := run([]string{"-profile", "road_usa", "-scale", "0.02", "-nodes", "2", "-metrics-dump"}, &out)
	os.Stderr = oldStderr
	w.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	samples, perr := obs.ParseText(r)
	r.Close()
	if perr != nil {
		t.Fatalf("dump does not parse: %v", perr)
	}
	if got := samples["mndmst_run_ranks"]; got != 2 {
		t.Fatalf("mndmst_run_ranks = %g, want 2 (-nodes 2)", got)
	}
	if samples["mndmst_run_sim_seconds"] <= 0 {
		t.Fatalf("mndmst_run_sim_seconds missing or zero: %v", samples)
	}
	found := false
	for k := range samples {
		if strings.HasPrefix(k, "mndmst_run_phase_compute_seconds{phase=") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no per-phase gauges in dump: %v", samples)
	}
	if !strings.Contains(out.String(), "forest:") {
		t.Fatalf("normal report missing from stdout:\n%s", out.String())
	}
}

// Command mndmst runs the MND-MST algorithm (or the Pregel+-style BSP
// baseline) on a graph — loaded from a file written by cmd/graphgen, a
// SNAP-style text edge list, or generated on the fly from one of the
// paper's workload profiles — and prints the forest summary with the
// simulated execution metrics.
//
// Usage:
//
//	mndmst -profile uk-2007 -scale 0.5 -nodes 16
//	mndmst -input graph.mnd -nodes 8 -machine cray -gpu
//	mndmst -text edges.txt -nodes 4 -verify
//	mndmst -profile arabic-2005 -nodes 16 -system bsp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mndmst"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mndmst:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mndmst", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		input    = fs.String("input", "", "binary graph file written by graphgen (overrides -profile)")
		text     = fs.String("text", "", "SNAP-style text edge list (overrides -profile)")
		profile  = fs.String("profile", "arabic-2005", "workload profile (see -list)")
		scale    = fs.Float64("scale", 1.0, "profile scale (1.0 = reproduction size)")
		seed     = fs.Int64("seed", 1, "weight seed for text inputs without weights")
		nodes    = fs.Int("nodes", 4, "simulated cluster nodes")
		machine  = fs.String("machine", "amd", "platform model: amd | cray")
		useGPU   = fs.Bool("gpu", false, "enable the per-node CPU+GPU split (cray only)")
		gpus     = fs.Int("gpus", 1, "accelerators per node when -gpu is set")
		system   = fs.String("system", "mnd", "algorithm: mnd | bsp | seq")
		app      = fs.String("app", "", "run a graph application instead of MST: bfs | sssp | pagerank | coloring | cc")
		source   = fs.Int("source", 0, "source vertex for bfs/sssp")
		group    = fs.Int("group", 4, "hierarchical merging group size")
		verify   = fs.Bool("verify", false, "cross-check the forest against sequential Kruskal")
		list     = fs.Bool("list", false, "list available profiles and exit")
		traceOut = fs.String("trace", "", "write per-rank JSONL trace to this file")
		rankProf = fs.Bool("rankprofile", false, "print the per-rank profile")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range mndmst.ProfileNames() {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	var g *mndmst.Graph
	var err error
	switch {
	case *input != "":
		g, err = mndmst.LoadGraph(*input)
	case *text != "":
		g, err = mndmst.LoadTextGraph(*text, *seed)
	default:
		g, err = mndmst.GenerateProfile(*profile, *scale)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	opts := mndmst.Options{
		Nodes:       *nodes,
		UseGPU:      *useGPU,
		GPUsPerNode: *gpus,
		GroupSize:   *group,
	}
	switch *machine {
	case "cray":
		opts.Machine = mndmst.CrayXC40
	case "amd":
		opts.Machine = mndmst.AMDCluster
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}

	if *app != "" {
		return runApp(out, g, opts, *app, int32(*source))
	}

	var res *mndmst.Result
	switch *system {
	case "mnd":
		res, err = mndmst.FindMSF(g, opts)
	case "bsp":
		res, err = mndmst.FindMSFBSP(g, opts)
	case "seq":
		res = mndmst.FindMSFSequential(g)
	default:
		err = fmt.Errorf("unknown system %q", *system)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "forest: %d edges, %d components, total weight %d\n",
		len(res.EdgeIDs), res.Components, res.TotalWeight)
	if *system != "seq" {
		fmt.Fprintf(out, "simulated: exec %.4fs  compute %.4fs  comm %.4fs  (%d msgs, %d bytes)\n",
			res.SimSeconds, res.ComputeSeconds, res.CommSeconds, res.MessagesSent, res.BytesSent)
		for _, ph := range res.Phases {
			fmt.Fprintf(out, "  phase %-14s compute %.4fs  comm %.4fs\n", ph.Phase, ph.Compute, ph.Comm)
		}
	}
	if res.Trace != nil {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := res.Trace.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "trace written to %s\n", *traceOut)
		}
		if *rankProf {
			fmt.Fprint(out, res.Trace.Profile())
		}
	}
	if *verify {
		if err := mndmst.Verify(g, res); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Fprintln(out, "verified: exact minimum spanning forest")
	}
	return nil
}

// runApp executes one of the non-MST graph applications.
func runApp(out io.Writer, g *mndmst.Graph, opts mndmst.Options, app string, source int32) error {
	switch app {
	case "bfs":
		res, err := mndmst.BFS(g, opts, source)
		if err != nil {
			return err
		}
		reached := 0
		for _, d := range res.Dist {
			if d >= 0 {
				reached++
			}
		}
		fmt.Fprintf(out, "bfs: reached %d/%d vertices in %d levels; simulated %.4fs (comm %.4fs)\n",
			reached, g.NumVertices(), res.Levels, res.SimSeconds, res.CommSeconds)
	case "sssp":
		res, err := mndmst.SSSP(g, opts, source)
		if err != nil {
			return err
		}
		reached := 0
		for _, d := range res.Dist {
			if d != mndmst.UnreachableDist {
				reached++
			}
		}
		fmt.Fprintf(out, "sssp: reached %d/%d vertices in %d rounds; simulated %.4fs (comm %.4fs)\n",
			reached, g.NumVertices(), res.Rounds, res.SimSeconds, res.CommSeconds)
	case "pagerank":
		res, err := mndmst.PageRank(g, opts, 0.85, 1e-8, 100)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pagerank: converged in %d iterations; simulated %.4fs (comm %.4fs)\n",
			res.Iterations, res.SimSeconds, res.CommSeconds)
	case "coloring":
		res, err := mndmst.Coloring(g, opts, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "coloring: %d colors in %d rounds; simulated %.4fs (comm %.4fs)\n",
			res.Colors, res.Rounds, res.SimSeconds, res.CommSeconds)
	case "cc":
		res, err := mndmst.FindConnectedComponents(g, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "connected components: %d; simulated %.4fs (comm %.4fs)\n",
			res.Components, res.SimSeconds, res.CommSeconds)
	default:
		return fmt.Errorf("unknown app %q", app)
	}
	return nil
}

// Command mndmst runs the MND-MST algorithm (or the Pregel+-style BSP
// baseline) on a graph — loaded from a file written by cmd/graphgen, a
// SNAP-style text edge list, or generated on the fly from one of the
// paper's workload profiles — and prints the forest summary with the
// simulated execution metrics.
//
// Usage:
//
//	mndmst -profile uk-2007 -scale 0.5 -nodes 16
//	mndmst -input graph.mnd -nodes 8 -machine cray -gpu
//	mndmst -text edges.txt -nodes 4 -verify
//	mndmst -profile arabic-2005 -nodes 16 -system bsp
//	mndmst -launch local:4 -profile arabic-2005 -scale 0.05 -verify
//
// With -launch local:N the process hosts a coordinator, forks N worker
// copies of itself connected over loopback TCP (one OS process per rank),
// and prints rank 0's summary — including real wall-clock times next to
// the simulated ones. Workers recognize themselves by the
// MNDMST_WORKER_COORD environment variable.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"

	"mndmst"
	"mndmst/internal/obs"
	"mndmst/internal/serve"
)

// workerCoordEnv tells a forked child which coordinator to join; its
// presence switches run() into TCP worker mode.
const workerCoordEnv = "MNDMST_WORKER_COORD"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mndmst:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mndmst", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		input    = fs.String("input", "", "binary graph file written by graphgen (overrides -profile)")
		text     = fs.String("text", "", "SNAP-style text edge list (overrides -profile)")
		profile  = fs.String("profile", "arabic-2005", "workload profile (see -list)")
		scale    = fs.Float64("scale", 1.0, "profile scale (1.0 = reproduction size)")
		seed     = fs.Int64("seed", 1, "weight seed for text inputs without weights")
		nodes    = fs.Int("nodes", 4, "simulated cluster nodes")
		machine  = fs.String("machine", "amd", "platform model: amd | cray")
		useGPU   = fs.Bool("gpu", false, "enable the per-node CPU+GPU split (cray only)")
		gpus     = fs.Int("gpus", 1, "accelerators per node when -gpu is set")
		system   = fs.String("system", "mnd", "algorithm: mnd | bsp | seq")
		app      = fs.String("app", "", "run a graph application instead of MST: bfs | sssp | pagerank | coloring | cc")
		source   = fs.Int("source", 0, "source vertex for bfs/sssp")
		group    = fs.Int("group", 4, "hierarchical merging group size")
		verify   = fs.Bool("verify", false, "cross-check the forest against sequential Kruskal")
		list     = fs.Bool("list", false, "list available profiles and exit")
		traceOut = fs.String("trace", "", "write per-rank JSONL trace to this file")
		rankProf = fs.Bool("rankprofile", false, "print the per-rank profile")
		launch   = fs.String("launch", "", "run as real OS processes: local:N forks N loopback TCP workers")
		jsonOut  = fs.Bool("json", false, "emit the machine-readable result record (the schema mndmst-serve returns) instead of text")
		metrics  = fs.Bool("metrics-dump", false, "print the run's metrics registry (Prometheus text) to stderr after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range mndmst.ProfileNames() {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	workerCoord := os.Getenv(workerCoordEnv)
	if *launch != "" {
		if workerCoord != "" {
			return fmt.Errorf("-launch inside a worker process")
		}
		if *system != "mnd" || *app != "" {
			return fmt.Errorf("-launch supports only -system mnd without -app")
		}
		// Children rerun this binary with exactly the flags the user set
		// (minus -launch); the coordinator address travels via environment.
		var childArgs []string
		fs.Visit(func(f *flag.Flag) {
			// -metrics-dump stays in the parent too: workers writing
			// Prometheus text into the relayed output would garble it.
			if f.Name == "launch" || f.Name == "metrics-dump" {
				return
			}
			childArgs = append(childArgs, "-"+f.Name+"="+f.Value.String())
		})
		return launchLocal(out, *launch, childArgs, *jsonOut)
	}
	worker := workerCoord != ""
	if worker && (*system != "mnd" || *app != "") {
		return fmt.Errorf("multi-process mode supports only -system mnd without -app")
	}

	var g *mndmst.Graph
	var err error
	switch {
	case *input != "":
		g, err = mndmst.LoadGraph(*input)
	case *text != "":
		g, err = mndmst.LoadTextGraph(*text, *seed)
	default:
		g, err = mndmst.GenerateProfile(*profile, *scale)
	}
	if err != nil {
		return err
	}
	if !worker && !*jsonOut {
		fmt.Fprintf(out, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	}

	opts := mndmst.Options{
		Nodes:       *nodes,
		UseGPU:      *useGPU,
		GPUsPerNode: *gpus,
		GroupSize:   *group,
	}
	switch *machine {
	case "cray":
		opts.Machine = mndmst.CrayXC40
	case "amd":
		opts.Machine = mndmst.AMDCluster
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}
	if worker {
		opts.Transport = mndmst.TransportTCP
		opts.Cluster = &mndmst.ClusterConfig{Coordinator: workerCoord}
	}

	if *app != "" {
		if *jsonOut {
			return fmt.Errorf("-json supports only MST runs (not -app)")
		}
		return runApp(out, g, opts, *app, int32(*source))
	}

	var res *mndmst.Result
	switch *system {
	case "mnd":
		res, err = mndmst.FindMSF(g, opts)
	case "bsp":
		res, err = mndmst.FindMSFBSP(g, opts)
	case "seq":
		res = mndmst.FindMSFSequential(g)
	default:
		err = fmt.Errorf("unknown system %q", *system)
	}
	if err != nil {
		return err
	}
	if *metrics && res.Trace != nil {
		reg := obs.NewRegistry()
		res.Trace.Publish(reg)
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			return fmt.Errorf("metrics dump: %w", err)
		}
	}
	if worker && !res.Root {
		return nil // non-root workers compute silently
	}
	if *jsonOut {
		// Machine-readable mode: one result record in the exact schema
		// mndmst-serve returns, so scripts parse CLI and service output
		// identically. -verify still gates success but prints nothing.
		if *verify {
			if err := mndmst.Verify(g, res); err != nil {
				return fmt.Errorf("verification FAILED: %w", err)
			}
		}
		if *traceOut != "" && res.Trace != nil {
			if err := writeTrace(res, *traceOut); err != nil {
				return err
			}
		}
		rec := serve.NewRecord(g, *system, opts, res)
		rec.EdgeIDs = nil // summary record, like the server's default response
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}
	if worker {
		fmt.Fprintf(out, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	}

	fmt.Fprintf(out, "forest: %d edges, %d components, total weight %d\n",
		len(res.EdgeIDs), res.Components, res.TotalWeight)
	if *system != "seq" {
		fmt.Fprintf(out, "simulated: exec %.4fs  compute %.4fs  comm %.4fs  (%d msgs, %d bytes)\n",
			res.SimSeconds, res.ComputeSeconds, res.CommSeconds, res.MessagesSent, res.BytesSent)
		if res.WallSeconds > 0 {
			fmt.Fprintf(out, "real: %.4fs wall (max across ranks)\n", res.WallSeconds)
		}
		for _, ph := range res.Phases {
			if res.WallSeconds > 0 {
				fmt.Fprintf(out, "  phase %-14s compute %.4fs  comm %.4fs  wall %.4fs\n",
					ph.Phase, ph.Compute, ph.Comm, ph.Wall)
			} else {
				fmt.Fprintf(out, "  phase %-14s compute %.4fs  comm %.4fs\n", ph.Phase, ph.Compute, ph.Comm)
			}
		}
	}
	if res.Trace != nil {
		if *traceOut != "" {
			if err := writeTrace(res, *traceOut); err != nil {
				return err
			}
			fmt.Fprintf(out, "trace written to %s\n", *traceOut)
		}
		if *rankProf {
			fmt.Fprint(out, res.Trace.Profile())
		}
	}
	if *verify {
		if err := mndmst.Verify(g, res); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Fprintln(out, "verified: exact minimum spanning forest")
	}
	return nil
}

// writeTrace dumps the per-rank JSONL trace to path.
func writeTrace(res *mndmst.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Trace.WriteJSONL(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// launchLocal hosts a coordinator on an ephemeral loopback port, forks N
// copies of this binary as TCP workers, and relays their output. Only rank
// 0 prints a summary, so the combined output reads like a single run —
// with real wall-clock columns added.
func launchLocal(out io.Writer, spec string, childArgs []string, jsonOut bool) error {
	var n int
	if _, err := fmt.Sscanf(spec, "local:%d", &n); err != nil || n < 1 {
		return fmt.Errorf("bad -launch %q (want local:N with N >= 1)", spec)
	}
	coord, err := mndmst.StartCoordinator("127.0.0.1:0", n)
	if err != nil {
		return fmt.Errorf("start coordinator: %w", err)
	}
	defer coord.Close()
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate own binary: %w", err)
	}
	if !jsonOut {
		fmt.Fprintf(out, "launch: %d workers via coordinator %s\n", n, coord.Addr())
	}

	cmds := make([]*exec.Cmd, n)
	bufs := make([]bytes.Buffer, n)
	for i := range cmds {
		cmd := exec.Command(exe, childArgs...)
		cmd.Env = append(os.Environ(), workerCoordEnv+"="+coord.Addr())
		cmd.Stdout = &bufs[i]
		cmd.Stderr = &bufs[i]
		if err := cmd.Start(); err != nil {
			killWorkers(cmds[:i])
			return fmt.Errorf("start worker %d: %w", i, err)
		}
		cmds[i] = cmd
	}
	if err := coord.Wait(); err != nil {
		killWorkers(cmds)
		return fmt.Errorf("rendezvous: %w", err)
	}
	var errs []error
	for i, c := range cmds {
		if err := c.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("worker %d: %w (output: %s)",
				i, err, bytes.TrimSpace(bufs[i].Bytes())))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	// Exactly one worker (rank 0) printed the summary; relay everything in
	// start order, which drops nothing and keeps ordering deterministic.
	for i := range bufs {
		if _, err := out.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// killWorkers tears down already-started workers after a launch failure.
// A kill that itself fails is reported to stderr (the launch error is
// already on its way to the caller); the Wait that follows only reaps the
// killed process, whose nonzero exit is expected.
func killWorkers(cmds []*exec.Cmd) {
	for _, c := range cmds {
		if c == nil {
			continue
		}
		if err := c.Process.Kill(); err != nil {
			fmt.Fprintf(os.Stderr, "mndmst: kill worker pid %d: %v\n", c.Process.Pid, err)
		}
		c.Wait() //lint:droperr reaping a process we just killed; its nonzero exit is expected
	}
}

// runApp executes one of the non-MST graph applications.
func runApp(out io.Writer, g *mndmst.Graph, opts mndmst.Options, app string, source int32) error {
	switch app {
	case "bfs":
		res, err := mndmst.BFS(g, opts, source)
		if err != nil {
			return err
		}
		reached := 0
		for _, d := range res.Dist {
			if d >= 0 {
				reached++
			}
		}
		fmt.Fprintf(out, "bfs: reached %d/%d vertices in %d levels; simulated %.4fs (comm %.4fs)\n",
			reached, g.NumVertices(), res.Levels, res.SimSeconds, res.CommSeconds)
	case "sssp":
		res, err := mndmst.SSSP(g, opts, source)
		if err != nil {
			return err
		}
		reached := 0
		for _, d := range res.Dist {
			if d != mndmst.UnreachableDist {
				reached++
			}
		}
		fmt.Fprintf(out, "sssp: reached %d/%d vertices in %d rounds; simulated %.4fs (comm %.4fs)\n",
			reached, g.NumVertices(), res.Rounds, res.SimSeconds, res.CommSeconds)
	case "pagerank":
		res, err := mndmst.PageRank(g, opts, 0.85, 1e-8, 100)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pagerank: converged in %d iterations; simulated %.4fs (comm %.4fs)\n",
			res.Iterations, res.SimSeconds, res.CommSeconds)
	case "coloring":
		res, err := mndmst.Coloring(g, opts, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "coloring: %d colors in %d rounds; simulated %.4fs (comm %.4fs)\n",
			res.Colors, res.Rounds, res.SimSeconds, res.CommSeconds)
	case "cc":
		res, err := mndmst.FindConnectedComponents(g, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "connected components: %d; simulated %.4fs (comm %.4fs)\n",
			res.Components, res.SimSeconds, res.CommSeconds)
	default:
		return fmt.Errorf("unknown app %q", app)
	}
	return nil
}

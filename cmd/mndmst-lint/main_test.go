package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodes pins the command's contract: 0 on a clean tree, 1 when
// findings are reported, 2 when loading fails, 0 for -checks.
func TestExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if c := run([]string{"../../internal/lint/testdata/src/good"}, &out, &errOut); c != 0 {
		t.Errorf("good corpus: exit %d, want 0\n%s%s", c, out.String(), errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if c := run([]string{"../../internal/lint/testdata/src/bad"}, &out, &errOut); c != 1 {
		t.Errorf("bad corpus: exit %d, want 1\n%s%s", c, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "det-mapiter") {
		t.Errorf("bad corpus output lacks findings:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if c := run([]string{"./does-not-exist"}, &out, &errOut); c != 2 {
		t.Errorf("unloadable pattern: exit %d, want 2\n%s%s", c, out.String(), errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if c := run([]string{"-checks"}, &out, &errOut); c != 0 {
		t.Errorf("-checks: exit %d, want 0", c)
	}
	for _, id := range []string{
		"det-mapiter", "det-wallclock", "tag-literal", "tag-dup", "go-hygiene",
		"err-drop", "weight-cmp", "lock-order", "goroutine-leak", "ctx-prop",
		"collective-symmetry", "stale-justification",
	} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-checks output lacks %s:\n%s", id, out.String())
		}
	}
}

// TestBaselineFlags: -update-baseline writes a baseline that absorbs every
// current finding, after which the same invocation gates clean; and
// -update-baseline without -baseline is a usage error.
func TestBaselineFlags(t *testing.T) {
	bl := filepath.Join(t.TempDir(), "baseline.json")
	corpus := "../../internal/lint/testdata/src/bad"

	var out, errOut strings.Builder
	if c := run([]string{"-baseline", bl, "-update-baseline", corpus}, &out, &errOut); c != 0 {
		t.Fatalf("-update-baseline: exit %d\n%s%s", c, out.String(), errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if c := run([]string{"-baseline", bl, corpus}, &out, &errOut); c != 0 {
		t.Errorf("baselined corpus: exit %d, want 0\n%s%s", c, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "baselined") {
		t.Errorf("summary does not report absorbed findings:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if c := run([]string{"-update-baseline", corpus}, &out, &errOut); c != 2 {
		t.Errorf("-update-baseline without -baseline: exit %d, want 2", c)
	}

	out.Reset()
	errOut.Reset()
	if c := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json"), corpus}, &out, &errOut); c != 2 {
		t.Errorf("missing baseline file: exit %d, want 2", c)
	}
}

// TestSARIFFlag writes a report and checks it is valid JSON with results.
func TestSARIFFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.sarif")
	var out, errOut strings.Builder
	if c := run([]string{"-sarif", path, "../../internal/lint/testdata/src/bad"}, &out, &errOut); c != 1 {
		t.Fatalf("exit %d, want 1\n%s%s", c, out.String(), errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Errorf("unexpected report shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
}

// TestGitHubFlag checks the ::error annotation lines.
func TestGitHubFlag(t *testing.T) {
	var out, errOut strings.Builder
	if c := run([]string{"-github", "../../internal/lint/testdata/src/bad"}, &out, &errOut); c != 1 {
		t.Fatalf("exit %d, want 1\n%s%s", c, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "::error file=internal/lint/testdata/src/bad/") {
		t.Errorf("output lacks repo-relative ::error annotations:\n%s", out.String())
	}
}

// TestFixFlag seeds a scratch package containing only a stale justification,
// runs -fix, and expects the token removed and a clean exit on the re-run.
func TestFixFlag(t *testing.T) {
	dir := filepath.Join("testdata", "fixscratch")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll("testdata") })
	src := filepath.Join(dir, "scratch.go")
	const before = `package fixscratch

func tidy() {
	//lint:droperr nothing below drops an error
	clean()
}

func clean() {}
`
	if err := os.WriteFile(src, []byte(before), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if c := run([]string{"-fix", "./" + filepath.ToSlash(dir)}, &out, &errOut); c != 0 {
		t.Fatalf("-fix: exit %d, want 0 after fixes\n%s%s", c, out.String(), errOut.String())
	}
	fixed, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "lint:droperr") {
		t.Errorf("stale justification survived -fix:\n%s", fixed)
	}
	if !strings.Contains(errOut.String(), "applied 1 fix(es)") {
		t.Errorf("summary does not report the applied fix:\n%s", errOut.String())
	}
}

package main

import (
	"strings"
	"testing"
)

// TestExitCodes pins the command's contract: 0 on a clean tree, 1 when
// findings are reported, 0 for -checks.
func TestExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if c := run([]string{"../../internal/lint/testdata/src/good"}, &out, &errOut); c != 0 {
		t.Errorf("good corpus: exit %d, want 0\n%s%s", c, out.String(), errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if c := run([]string{"../../internal/lint/testdata/src/bad"}, &out, &errOut); c != 1 {
		t.Errorf("bad corpus: exit %d, want 1\n%s%s", c, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "det-mapiter") {
		t.Errorf("bad corpus output lacks findings:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if c := run([]string{"-checks"}, &out, &errOut); c != 0 {
		t.Errorf("-checks: exit %d, want 0", c)
	}
	for _, id := range []string{"det-mapiter", "det-wallclock", "tag-literal", "tag-dup", "go-hygiene", "err-drop", "weight-cmp"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-checks output lacks %s:\n%s", id, out.String())
		}
	}
}

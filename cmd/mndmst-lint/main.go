// Command mndmst-lint runs the project-specific static-analysis suite over
// the given packages (default ./...) and exits nonzero when any invariant
// is violated. It is stdlib-only: packages are resolved with `go list` and
// type-checked with go/types, so it needs nothing beyond the Go toolchain.
//
// Usage:
//
//	mndmst-lint ./...                   # whole module (CI gate)
//	mndmst-lint ./internal/merge        # one package
//	mndmst-lint -checks                 # list the check IDs and exit
//	mndmst-lint -baseline lint.baseline.json ./...   # gate on new findings only
//	mndmst-lint -baseline lint.baseline.json -update-baseline ./...
//	mndmst-lint -sarif lint.sarif.json ./...         # SARIF 2.1.0 report
//	mndmst-lint -fix ./...              # apply suggested fixes, re-analyze
//	mndmst-lint -github ./...           # ::error annotations for CI logs
//
// Checks and their //lint: justification tokens are documented in
// DESIGN.md ("Determinism & analysis rules"). Exit status: 0 clean,
// 1 findings reported, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mndmst/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("mndmst-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		listChecks   = fs.Bool("checks", false, "list the check IDs and exit")
		quiet        = fs.Bool("q", false, "suppress the summary line")
		sarifPath    = fs.String("sarif", "", "write a SARIF 2.1.0 report of the (unbaselined) findings to this file")
		baselineFile = fs.String("baseline", "", "filter findings through this committed baseline file")
		updateBl     = fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit clean")
		fix          = fs.Bool("fix", false, "apply the suggested fixes, then re-run the analysis")
		github       = fs.Bool("github", false, "emit GitHub workflow annotation lines (::error ...) for findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listChecks {
		for _, c := range lint.Checks {
			fmt.Fprintf(out, "%-20s (suppress: //lint:%s) %s\n", c.ID, c.Suppress, c.Doc)
		}
		return 0
	}
	if *updateBl && *baselineFile == "" {
		fmt.Fprintln(errOut, "mndmst-lint: -update-baseline requires -baseline <path>")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(errOut, "mndmst-lint:", err)
		return 2
	}
	findings := lint.Run(pkgs)

	if *fix {
		applied, files, err := lint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(errOut, "mndmst-lint:", err)
			return 2
		}
		if applied > 0 {
			if !*quiet {
				fmt.Fprintf(errOut, "mndmst-lint: applied %d fix(es) in %d file(s)\n", applied, len(files))
			}
			// The tree changed under us: re-analyze what remains.
			if pkgs, err = lint.Load(patterns); err != nil {
				fmt.Fprintln(errOut, "mndmst-lint:", err)
				return 2
			}
			findings = lint.Run(pkgs)
		}
	}

	base := ""
	if *sarifPath != "" || *baselineFile != "" || *github {
		if base, err = lint.ModuleRoot(); err != nil {
			fmt.Fprintln(errOut, "mndmst-lint:", err)
			return 2
		}
	}

	if *updateBl {
		if err := lint.WriteBaseline(*baselineFile, findings, base); err != nil {
			fmt.Fprintln(errOut, "mndmst-lint:", err)
			return 2
		}
		if !*quiet {
			fmt.Fprintf(errOut, "mndmst-lint: baseline %s rewritten with %d finding(s)\n", *baselineFile, len(findings))
		}
		return 0
	}

	fresh, absorbed := findings, 0
	if *baselineFile != "" {
		bl, err := lint.LoadBaseline(*baselineFile)
		if err != nil {
			fmt.Fprintln(errOut, "mndmst-lint:", err)
			return 2
		}
		fresh, absorbed = lint.FilterBaseline(findings, bl, base)
	}

	if *sarifPath != "" {
		data, err := lint.SARIF(fresh, base)
		if err != nil {
			fmt.Fprintln(errOut, "mndmst-lint:", err)
			return 2
		}
		if err := os.WriteFile(*sarifPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(errOut, "mndmst-lint:", err)
			return 2
		}
	}

	for _, f := range fresh {
		fmt.Fprintln(out, f)
		if *github {
			file := f.Pos.Filename
			if rel, err := filepath.Rel(base, file); err == nil {
				file = filepath.ToSlash(rel)
			}
			fmt.Fprintf(out, "::error file=%s,line=%d,col=%d::%s: %s\n", file, f.Pos.Line, f.Pos.Column, f.ID, f.Msg)
		}
	}
	if len(fresh) > 0 {
		if !*quiet {
			fmt.Fprintf(errOut, "mndmst-lint: %d new finding(s) in %d package(s) (%d baselined)\n", len(fresh), len(pkgs), absorbed)
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(errOut, "mndmst-lint: %d package(s) clean (%d baselined finding(s))\n", len(pkgs), absorbed)
	}
	return 0
}

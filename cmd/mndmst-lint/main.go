// Command mndmst-lint runs the project-specific static-analysis suite over
// the given packages (default ./...) and exits nonzero when any invariant
// is violated. It is stdlib-only: packages are resolved with `go list` and
// type-checked with go/types, so it needs nothing beyond the Go toolchain.
//
// Usage:
//
//	mndmst-lint ./...                   # whole module (CI gate)
//	mndmst-lint ./internal/merge        # one package
//	mndmst-lint -checks                 # list the check IDs and exit
//
// Checks and their //lint: justification tokens are documented in
// DESIGN.md ("Determinism & analysis rules"). Exit status: 0 clean,
// 1 findings reported, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mndmst/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("mndmst-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		listChecks = fs.Bool("checks", false, "list the check IDs and exit")
		quiet      = fs.Bool("q", false, "suppress the summary line")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listChecks {
		for _, c := range lint.Checks {
			fmt.Fprintf(out, "%-14s (suppress: //lint:%s) %s\n", c.ID, c.Suppress, c.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(errOut, "mndmst-lint:", err)
		return 2
	}
	findings := lint.Run(pkgs)
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(errOut, "mndmst-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(errOut, "mndmst-lint: %d package(s) clean\n", len(pkgs))
	}
	return 0
}

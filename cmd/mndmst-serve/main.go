// Command mndmst-serve runs the MND-MST job service: a long-lived HTTP
// server that accepts MSF jobs over a library of graphs, deduplicates
// identical requests through a result cache with singleflight coalescing,
// bounds its queue with typed admission rejections, and drains gracefully
// on SIGINT/SIGTERM (a second signal forces exit).
//
// Start it and submit a job:
//
//	$ mndmst-serve -listen 127.0.0.1:8080 -workers 4 &
//	$ curl -s localhost:8080/v1/jobs -d \
//	    '{"graph":{"profile":"arabic-2005","scale":0.1},"options":{"nodes":4},"wait":true}'
//
// See DESIGN.md §10 for the API schema and the queue/cache/drain
// invariants.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"mndmst/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mndmst-serve:", err)
		os.Exit(1)
	}
}

// buildHandler wraps the server's API (which already includes /metrics)
// with the optional pprof endpoints. pprof is opt-in: it exposes stack
// traces and heap contents, which not every deployment wants reachable.
func buildHandler(s *serve.Server, pprofOn bool) http.Handler {
	if !pprofOn {
		return s.Handler()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", s.Handler())
	return mux
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mndmst-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		listen       = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		workers      = fs.Int("workers", 2, "concurrent job executors")
		queueDepth   = fs.Int("queue", 64, "admission bound on queued jobs")
		graphCacheMB = fs.Int64("graph-cache-mb", 256, "decoded-graph LRU bound (MiB)")
		resultCache  = fs.Int("result-cache", 1024, "result cache entries")
		defaultTO    = fs.Duration("default-timeout", 0, "deadline for jobs that request none (0 = unbounded)")
		maxTO        = fs.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = no cap)")
		graphDir     = fs.String("graph-dir", "", "directory file-based graph specs resolve under (\"\" disables them)")
		drainTO      = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		pprofOn      = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the same listener")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := serve.New(serve.Config{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		GraphCacheBytes:    *graphCacheMB << 20,
		ResultCacheEntries: *resultCache,
		DefaultTimeout:     *defaultTO,
		MaxTimeout:         *maxTO,
		GraphDir:           *graphDir,
		Logf:               log.Printf,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	httpSrv := &http.Server{Handler: buildHandler(s, *pprofOn)}

	drainc := make(chan struct{})
	stop := serve.OnSignals(
		func() {
			fmt.Fprintln(out, "mndmst-serve: drain: admission stopped, finishing in-flight jobs (next signal forces exit)")
			close(drainc)
		},
		func() {
			fmt.Fprintln(os.Stderr, "mndmst-serve: forced exit before drain completed")
			os.Exit(1)
		},
	)
	defer stop()

	fmt.Fprintf(out, "mndmst-serve: serving on %s (workers %d, queue %d)\n", ln.Addr(), *workers, *queueDepth)
	servec := make(chan error, 1)
	go func() { servec <- httpSrv.Serve(ln) }()

	select {
	case err := <-servec:
		// Listener died without a drain request; stop the pool and report.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if derr := s.Shutdown(shutdownCtx); derr != nil {
			return errors.Join(err, derr)
		}
		return err
	case <-drainc:
	}

	// Drain sequence: stop admission first so new submissions see a clean
	// 503, let queued and in-flight jobs finish, then close the HTTP side
	// (which waits for in-flight handlers, including wait=true long polls
	// that resolve as their jobs complete).
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := s.Shutdown(shutdownCtx)
	if drainErr != nil {
		fmt.Fprintf(out, "mndmst-serve: drain grace period expired; canceled remaining jobs: %v\n", drainErr)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return errors.Join(drainErr, err)
	}
	if err := <-servec; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return errors.Join(drainErr, err)
	}
	st := s.Stats()
	fmt.Fprintf(out, "mndmst-serve: drained: %d completed, %d failed, %d canceled, %d rejected; %d computations, %d cache hits, %d coalesced\n",
		st.JobsCompleted, st.JobsFailed, st.JobsCanceled, st.JobsRejected,
		st.Computations, st.ResultCacheHits, st.ResultCacheCoalesced)
	return drainErr
}

package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mndmst/internal/obs"
	"mndmst/internal/serve"
)

// lineWatcher is an io.Writer that hands each complete output line to a
// callback while accumulating everything for later assertions.
type lineWatcher struct {
	mu     sync.Mutex
	buf    strings.Builder
	part   string
	onLine func(string)
}

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.buf.Write(p)
	w.part += string(p)
	for {
		i := strings.IndexByte(w.part, '\n')
		if i < 0 {
			break
		}
		line := w.part[:i]
		w.part = w.part[i+1:]
		if w.onLine != nil {
			w.onLine(line)
		}
	}
	w.mu.Unlock()
	return len(p), nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var servingRE = regexp.MustCompile(`serving on (\S+)`)

// TestServeGracefulSIGTERM runs the real binary entry point in-process:
// serve on an ephemeral port, answer a job over HTTP, then deliver an
// actual SIGTERM to the process and require a clean drain — run() returns
// nil and reports the drained counters.
func TestServeGracefulSIGTERM(t *testing.T) {
	addrc := make(chan string, 1)
	w := &lineWatcher{onLine: func(line string) {
		if m := servingRE.FindStringSubmatch(line); m != nil {
			select {
			case addrc <- m[1]:
			default:
			}
		}
	}}

	runErr := make(chan error, 1)
	go func() { runErr <- run([]string{"-listen", "127.0.0.1:0", "-workers", "2"}, w) }()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-runErr:
		t.Fatalf("run exited early: %v\n%s", err, w.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its address:\n%s", w.String())
	}

	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json",
		strings.NewReader(`{"graph":{"profile":"road_usa","scale":0.02},"options":{"nodes":2},"wait":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var js struct {
		State  string `json:"state"`
		Result *struct {
			ForestEdges int    `json:"forest_edges"`
			TotalWeight uint64 `json:"total_weight"`
		} `json:"result"`
	}
	err = json.NewDecoder(resp.Body).Decode(&js)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || js.State != "done" || js.Result == nil || js.Result.ForestEdges == 0 {
		t.Fatalf("job answer: %d %+v", resp.StatusCode, js)
	}

	// The real thing: SIGTERM to our own process. run()'s handler must
	// catch it, drain, and return cleanly.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain exit: %v\n%s", err, w.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("server did not drain on SIGTERM:\n%s", w.String())
	}
	out := w.String()
	for _, want := range []string{"drain: admission stopped", "drained: 1 completed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestServeFlagErrors: bad flags fail fast instead of half-starting.
func TestServeFlagErrors(t *testing.T) {
	var w lineWatcher
	if err := run([]string{"-badflag"}, &w); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-listen", "256.0.0.1:bogus"}, &w); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestServeListenConflict: a taken port surfaces as a listen error, not
// a hang.
func TestServeListenConflict(t *testing.T) {
	addrc := make(chan string, 1)
	w := &lineWatcher{onLine: func(line string) {
		if m := servingRE.FindStringSubmatch(line); m != nil {
			select {
			case addrc <- m[1]:
			default:
			}
		}
	}}
	runErr := make(chan error, 1)
	go func() { runErr <- run([]string{"-listen", "127.0.0.1:0"}, w) }()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(30 * time.Second):
		t.Fatalf("no address:\n%s", w.String())
	}
	var w2 lineWatcher
	if err := run([]string{"-listen", addr}, &w2); err == nil || !strings.Contains(err.Error(), "listen") {
		t.Fatalf("conflicting listen: %v", err)
	}
	// Tear the first instance down for a clean exit.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("first instance did not drain")
	}
}

// TestBuildHandlerMetricsAndPprof: /metrics always serves; the pprof
// endpoints exist exactly when -pprof is set.
func TestBuildHandlerMetricsAndPprof(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	for _, tc := range []struct {
		pprofOn   bool
		wantPprof int
	}{
		{pprofOn: false, wantPprof: http.StatusNotFound},
		{pprofOn: true, wantPprof: http.StatusOK},
	} {
		ts := httptest.NewServer(buildHandler(s, tc.pprofOn))
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		samples, perr := obs.ParseText(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || perr != nil {
			t.Fatalf("pprof=%v: GET /metrics: %d, parse %v", tc.pprofOn, resp.StatusCode, perr)
		}
		if _, ok := samples["mndmst_serve_jobs_submitted_total"]; !ok {
			t.Fatalf("pprof=%v: exposition lacks server counters: %v", tc.pprofOn, samples)
		}
		resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //lint:droperr draining a test response body
		resp.Body.Close()
		if resp.StatusCode != tc.wantPprof {
			t.Fatalf("pprof=%v: GET /debug/pprof/cmdline: %d, want %d", tc.pprofOn, resp.StatusCode, tc.wantPprof)
		}
		ts.Close()
	}
}

// Command validate runs the full cross-implementation invariant suite on a
// graph: the sequential references (Kruskal, Prim, Boruvka, filter-Kruskal),
// the shared-memory kernel, the distributed MND-MST at several node counts
// (CPU-only and hybrid), and the BSP baseline must all produce the exact
// same minimum spanning forest, verified independently by the path-max
// checker. Useful as a smoke test on user-supplied inputs.
//
// Usage:
//
//	validate -input graph.mnd
//	validate -text edges.txt
//	validate -profile sk-2005 -scale 0.2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mndmst"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		input   = fs.String("input", "", "binary graph file (from graphgen)")
		text    = fs.String("text", "", "SNAP-style text edge list")
		profile = fs.String("profile", "", "generate a workload profile instead")
		scale   = fs.Float64("scale", 0.2, "profile scale")
		seed    = fs.Int64("seed", 1, "weight seed for text inputs without weights")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *mndmst.Graph
	var err error
	switch {
	case *input != "":
		g, err = mndmst.LoadGraph(*input)
	case *text != "":
		g, err = mndmst.LoadTextGraph(*text, *seed)
	case *profile != "":
		g, err = mndmst.GenerateProfile(*profile, *scale)
	default:
		err = fmt.Errorf("one of -input, -text, -profile is required")
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	ref := mndmst.FindMSFSequential(g)
	fmt.Fprintf(out, "reference (Kruskal): %d edges, %d components, weight %d\n",
		len(ref.EdgeIDs), ref.Components, ref.TotalWeight)
	if err := mndmst.Verify(g, ref); err != nil {
		return fmt.Errorf("reference forest failed verification: %w", err)
	}
	pass := func(name string, res *mndmst.Result, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if res.TotalWeight != ref.TotalWeight || len(res.EdgeIDs) != len(ref.EdgeIDs) {
			return fmt.Errorf("%s: forest differs from reference", name)
		}
		fmt.Fprintf(out, "  ok: %s\n", name)
		return nil
	}

	shared, err := mndmst.FindMSFShared(g)
	if err := pass("shared-memory kernel", shared, err); err != nil {
		return err
	}

	for _, nodes := range []int{1, 2, 4, 8, 16} {
		res, err := mndmst.FindMSF(g, mndmst.Options{Nodes: nodes})
		if err := pass(fmt.Sprintf("MND-MST %d nodes (amd)", nodes), res, err); err != nil {
			return err
		}
	}
	res, err := mndmst.FindMSF(g, mndmst.Options{Nodes: 4, Machine: mndmst.CrayXC40, UseGPU: true})
	if err := pass("MND-MST 4 nodes CPU+GPU (cray)", res, err); err != nil {
		return err
	}
	res, err = mndmst.FindMSF(g, mndmst.Options{Nodes: 8, Exception: mndmst.BorderEdge})
	if err := pass("MND-MST 8 nodes EXCPT_BORDER_EDGE", res, err); err != nil {
		return err
	}
	res, err = mndmst.FindMSFBSP(g, mndmst.Options{Nodes: 8})
	if err := pass("Pregel+ baseline 8 nodes", res, err); err != nil {
		return err
	}

	fmt.Fprintln(out, "all implementations agree; forest verified exact")
	return nil
}

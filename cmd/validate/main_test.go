package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateProfile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-profile", "road_usa", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "all implementations agree") {
		t.Fatalf("output: %s", out.String())
	}
	if strings.Count(out.String(), "ok:") != 9 {
		t.Fatalf("expected 9 configurations, output:\n%s", out.String())
	}
}

func TestValidateTextInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 3\n3 0\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-text", path}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run([]string{"-profile", "nope"}, &out); err == nil {
		t.Fatal("bad profile accepted")
	}
}

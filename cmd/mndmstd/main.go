// Command mndmstd is the MND-MST worker daemon: one OS process per rank of
// a real multi-process cluster connected over TCP. Every worker is started
// with the identical graph flags (each regenerates or loads the same graph
// deterministically — the input is never shipped over the network) and
// joins the cluster through a rendezvous coordinator that assigns rank IDs
// and distributes the peer address table.
//
// Start a 4-rank cluster on one or more machines:
//
//	host0$ mndmstd -lead -ranks 4 -profile arabic-2005 -scale 0.1
//	coordinator listening on 192.0.2.10:9000
//	host1$ mndmstd -coordinator 192.0.2.10:9000 -profile arabic-2005 -scale 0.1
//	host2$ mndmstd -coordinator 192.0.2.10:9000 -profile arabic-2005 -scale 0.1
//	host3$ mndmstd -coordinator 192.0.2.10:9000 -profile arabic-2005 -scale 0.1
//
// The -lead worker hosts the coordinator and participates as a normal
// rank. Whichever worker is assigned rank 0 prints the forest summary with
// simulated and real wall-clock times; the others exit silently on
// success. A dead peer is detected by heartbeat timeout and surfaces as a
// descriptive error on every surviving rank instead of a hang.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"mndmst"
	"mndmst/internal/obs"
	"mndmst/internal/serve"
	"mndmst/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mndmstd:", err)
		os.Exit(1)
	}
}

// startMetricsServer serves GET /metrics (and, opted in, pprof) for reg
// on addr. It returns the resolved address and a stop function that
// closes the listener and joins the serving goroutine.
func startMetricsServer(reg *obs.Registry, addr string, pprofOn bool) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Handler(reg))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// ErrServerClosed is the normal Close outcome; anything else means
		// the scrape endpoint died early, which must not fail the run.
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "mndmstd: metrics server:", err)
		}
	}()
	stop := func() {
		srv.Close() //lint:droperr listener teardown on exit; the run's outcome is already decided
		<-done
	}
	return ln.Addr().String(), stop, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mndmstd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		coordinator = fs.String("coordinator", "", "coordinator address to join (host:port)")
		lead        = fs.Bool("lead", false, "host the coordinator in this process (and join as a worker)")
		ranks       = fs.Int("ranks", 4, "cluster size when -lead is set")
		coordAddr   = fs.String("coordinator-listen", "127.0.0.1:0", "coordinator listen address when -lead is set")
		listen      = fs.String("listen", "", "peer listen address (default 127.0.0.1:0)")
		dialTO      = fs.Duration("dial-timeout", 0, "coordinator/peer dial timeout (default 10s)")
		heartbeat   = fs.Duration("heartbeat", 0, "idle-link keepalive period (default 500ms)")
		peerTO      = fs.Duration("peer-timeout", 0, "silence window before a peer is declared dead (default 5s)")

		input    = fs.String("input", "", "binary graph file written by graphgen (overrides -profile)")
		text     = fs.String("text", "", "SNAP-style text edge list (overrides -profile)")
		profile  = fs.String("profile", "arabic-2005", "workload profile")
		scale    = fs.Float64("scale", 1.0, "profile scale (1.0 = reproduction size)")
		seed     = fs.Int64("seed", 1, "weight seed for text inputs without weights")
		machine  = fs.String("machine", "amd", "platform model: amd | cray")
		useGPU   = fs.Bool("gpu", false, "enable the per-node CPU+GPU split (cray only)")
		gpus     = fs.Int("gpus", 1, "accelerators per node when -gpu is set")
		group    = fs.Int("group", 4, "hierarchical merging group size")
		verify   = fs.Bool("verify", false, "rank 0 cross-checks the forest against sequential Kruskal")
		rankProf = fs.Bool("rankprofile", false, "rank 0 prints the gathered per-rank profile")

		chaosSeed    = fs.Int64("chaos-seed", 0, "seed for the fault-injection layer (used when any -chaos-* flag is set)")
		chaosDrop    = fs.Float64("chaos-drop", 0, "per-message drop probability in [0,1]")
		chaosCorrupt = fs.Float64("chaos-corrupt", 0, "per-message corruption probability in [0,1]")
		chaosDup     = fs.Float64("chaos-dup", 0, "per-message duplication probability in [0,1]")
		chaosReorder = fs.Float64("chaos-reorder", 0, "per-message reorder probability in [0,1]")
		chaosDelay   = fs.Float64("chaos-delay", 0, "per-message delay probability in [0,1]")
		chaosDelayMx = fs.Duration("chaos-delay-max", 0, "upper bound of one injected delay (default 2ms)")
		chaosRecvTO  = fs.Duration("chaos-recv-timeout", 0, "receive deadline under chaos (default 30s)")
		chaosCrash   = fs.Uint64("chaos-crash-step", 0, "crash-stop this worker at its Nth transport operation (0 = never)")

		metricsListen = fs.String("metrics-listen", "", "serve GET /metrics on this address while the run is in flight (\"\" disables)")
		pprofOn       = fs.Bool("pprof", false, "also expose net/http/pprof under /debug/pprof/ on -metrics-listen")
		retrySeed     = fs.Int64("retry-seed", 0, "seed for the jittered dial/rendezvous backoff (0 = clock-derived; give each rank its own)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	// dialCancel aborts the join's retry loops (backoff sleeps included)
	// on the first drain signal: a worker stuck re-dialing a dead
	// coordinator exits promptly instead of sleeping out its backoff.
	dialCancel := make(chan struct{})
	cfg := mndmst.ClusterConfig{
		Coordinator:       *coordinator,
		Listen:            *listen,
		DialTimeout:       *dialTO,
		HeartbeatInterval: *heartbeat,
		PeerTimeout:       *peerTO,
		Metrics:           reg,
		RetrySeed:         *retrySeed,
		Cancel:            dialCancel,
	}
	if *metricsListen != "" {
		addr, stopMetrics, err := startMetricsServer(reg, *metricsListen, *pprofOn)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer stopMetrics()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", addr)
	}
	var coord *mndmst.Coordinator
	if *lead {
		if *coordinator != "" {
			return fmt.Errorf("-lead and -coordinator are mutually exclusive")
		}
		if *ranks < 1 {
			return fmt.Errorf("-ranks must be >= 1")
		}
		var err error
		coord, err = mndmst.StartCoordinator(*coordAddr, *ranks)
		if err != nil {
			return fmt.Errorf("start coordinator: %w", err)
		}
		defer coord.Close()
		fmt.Fprintf(out, "coordinator listening on %s\n", coord.Addr())
		cfg.Coordinator = coord.Addr()
	}
	if cfg.Coordinator == "" {
		return fmt.Errorf("need -coordinator host:port (or -lead)")
	}

	var g *mndmst.Graph
	var err error
	switch {
	case *input != "":
		g, err = mndmst.LoadGraph(*input)
	case *text != "":
		g, err = mndmst.LoadTextGraph(*text, *seed)
	default:
		g, err = mndmst.GenerateProfile(*profile, *scale)
	}
	if err != nil {
		return err
	}

	opts := mndmst.Options{
		UseGPU:      *useGPU,
		GPUsPerNode: *gpus,
		GroupSize:   *group,
	}
	if *chaosDrop > 0 || *chaosCorrupt > 0 || *chaosDup > 0 || *chaosReorder > 0 ||
		*chaosDelay > 0 || *chaosCrash > 0 || *chaosSeed != 0 {
		opts.Chaos = &mndmst.ChaosConfig{
			Seed:        *chaosSeed,
			DropProb:    *chaosDrop,
			CorruptProb: *chaosCorrupt,
			DupProb:     *chaosDup,
			ReorderProb: *chaosReorder,
			DelayProb:   *chaosDelay,
			DelayMax:    *chaosDelayMx,
			RecvTimeout: *chaosRecvTO,
			CrashStep:   *chaosCrash,
		}
		fmt.Fprintf(out, "chaos: fault injection armed (seed %d)\n", *chaosSeed)
	}
	switch *machine {
	case "cray":
		opts.Machine = mndmst.CrayXC40
	case "amd":
		opts.Machine = mndmst.AMDCluster
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}

	// Graceful drain, shared with mndmst-serve: the first SIGINT/SIGTERM
	// announces the drain and lets the in-flight computation finish (the
	// transport then closes cleanly through the normal return path instead
	// of dying mid-protocol and stranding peers); a second signal forces
	// exit.
	stopSignals := serve.OnSignals(
		func() {
			fmt.Fprintln(os.Stderr, "mndmstd: drain: finishing in-flight computation (next signal forces exit)")
			close(dialCancel)
		},
		func() {
			fmt.Fprintln(os.Stderr, "mndmstd: forced exit; peers will observe this rank as dead")
			os.Exit(1)
		},
	)
	defer stopSignals()

	start := time.Now() //lint:wallclock real wall-clock reporting is the point of the distributed daemon
	res, err := mndmst.FindMSFDistributed(g, opts, cfg)
	if err != nil {
		return err
	}
	trace.PublishRank(reg, res.Rank)
	res.Trace.Publish(reg)
	if coord != nil {
		if err := coord.Wait(); err != nil {
			return fmt.Errorf("rendezvous: %w", err)
		}
	}
	if !res.Root {
		return nil // non-root ranks exit silently
	}

	fmt.Fprintf(out, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Fprintf(out, "forest: %d edges, %d components, total weight %d\n",
		len(res.EdgeIDs), res.Components, res.TotalWeight)
	fmt.Fprintf(out, "simulated: exec %.4fs  compute %.4fs  comm %.4fs  (%d msgs, %d bytes)\n",
		res.SimSeconds, res.ComputeSeconds, res.CommSeconds, res.MessagesSent, res.BytesSent)
	elapsed := time.Since(start) //lint:wallclock real wall-clock reporting is the point of the distributed daemon
	fmt.Fprintf(out, "real: %.4fs wall (max across ranks; this process %.4fs)\n",
		res.WallSeconds, elapsed.Seconds())
	for _, ph := range res.Phases {
		fmt.Fprintf(out, "  phase %-14s compute %.4fs  comm %.4fs  wall %.4fs\n",
			ph.Phase, ph.Compute, ph.Comm, ph.Wall)
	}
	if *rankProf {
		fmt.Fprint(out, res.Trace.Profile())
	}
	if *verify {
		if err := mndmst.Verify(g, res); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Fprintln(out, "verified: exact minimum spanning forest")
	}
	return nil
}

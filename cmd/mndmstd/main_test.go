package main

import (
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mndmst/internal/obs"
)

// freeLoopbackAddr reserves an ephemeral port and releases it for the
// daemon to claim — a tiny race tests accept for the convenience of a
// known coordinator address.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestLeadSingleRank(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-lead", "-ranks", "1",
		"-profile", "road_usa", "-scale", "0.02", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"coordinator listening on", "forest:", "simulated:", "real:", "verified: exact"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLeadAndJoiningWorker(t *testing.T) {
	addr := freeLoopbackAddr(t)
	graphArgs := []string{"-profile", "road_usa", "-scale", "0.03"}

	var leadOut, workOut strings.Builder
	var leadErr, workErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		leadErr = run(append([]string{
			"-lead", "-ranks", "2", "-coordinator-listen", addr, "-verify", "-rankprofile",
		}, graphArgs...), &leadOut)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(100 * time.Millisecond) // let the lead bind its port
		workErr = run(append([]string{
			"-coordinator", addr, "-verify", "-rankprofile",
		}, graphArgs...), &workOut)
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("two-rank daemon run deadlocked")
	}
	if leadErr != nil {
		t.Fatalf("lead: %v\n%s", leadErr, leadOut.String())
	}
	if workErr != nil {
		t.Fatalf("worker: %v\n%s", workErr, workOut.String())
	}
	combined := leadOut.String() + workOut.String()
	// Exactly one of the two processes is rank 0 and prints the summary.
	if got := strings.Count(combined, "forest:"); got != 1 {
		t.Fatalf("%d forest lines (want 1):\nlead:\n%s\nworker:\n%s", got, leadOut.String(), workOut.String())
	}
	for _, want := range []string{"real:", "wall", "load balance", "verified: exact"} {
		if !strings.Contains(combined, want) {
			t.Fatalf("output missing %q:\nlead:\n%s\nworker:\n%s", want, leadOut.String(), workOut.String())
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                       // neither -coordinator nor -lead
		{"-lead", "-coordinator", "127.0.0.1:1"}, // mutually exclusive
		{"-lead", "-ranks", "0"},
		{"-coordinator", "127.0.0.1:1", "-machine", "vax"},
		{"-badflag"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestStartMetricsServer: the scrape endpoint serves the registry, pprof
// appears only when opted in, and stop() joins the serving goroutine.
func TestStartMetricsServer(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("test_total", "probe").Inc()

	addr, stop, err := startMetricsServer(reg, "127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, perr := obs.ParseText(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || perr != nil {
		t.Fatalf("GET /metrics: %d, parse %v", resp.StatusCode, perr)
	}
	if samples["test_total"] != 1 {
		t.Fatalf("registry not served: %v", samples)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without -pprof: %d", resp.StatusCode)
	}
	stop()

	addr, stop, err = startMetricsServer(reg, "127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline with -pprof: %d", resp.StatusCode)
	}
}

// TestLeadSingleRankMetricsListen: a full single-rank run with
// -metrics-listen announces the scrape endpoint and still completes
// normally. The endpoint's content is covered by TestStartMetricsServer
// and the trace publish tests; the listener is torn down by run()'s
// deferred stop, so only the announcement is observable from out here.
func TestLeadSingleRankMetricsListen(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-lead", "-ranks", "1",
		"-profile", "road_usa", "-scale", "0.02",
		"-metrics-listen", "127.0.0.1:0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"metrics on http://", "forest:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

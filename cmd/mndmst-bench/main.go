// Command mndmst-bench runs the deterministic perf-regression harness
// (internal/bench/harness) and gates revisions against a committed
// baseline.
//
// Modes of use:
//
//	mndmst-bench -mode sim -out BENCH_core.json
//	    Run the pinned scenario suite on the simulated clocks. Output is
//	    bit-stable: two runs of the same binary produce byte-identical
//	    files, so the baseline diffs exactly.
//
//	mndmst-bench -mode wall -reps 5 -out BENCH_core.json
//	    Measure real elapsed time per scenario (min-of-N with warmup and
//	    IQR outlier rejection) with an environment fingerprint.
//
//	mndmst-bench -compare bench.baseline.json [-current BENCH_core.json]
//	    Compare a current record against a baseline. Without -current the
//	    suite runs first (in the baseline's mode). Sim baselines gate
//	    exactly; wall baselines within -tol. Exit 0 pass, 1 regression.
//
//	mndmst-bench -validate BENCH_core.json
//	    Schema-check an existing record (exit 2 on any load failure —
//	    including an empty file).
//
//	mndmst-bench -list
//	    Print the pinned scenario names.
//
// Exit codes: 0 pass, 1 regression detected, 2 load/run failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"mndmst/internal/bench/harness"
	"mndmst/internal/bench/schema"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("mndmst-bench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		mode      = fs.String("mode", "sim", "measurement mode: sim (deterministic clocks) or wall (real time)")
		scale     = fs.Float64("scale", harness.DefaultScale, "workload scale")
		scenarios = fs.String("scenarios", "", "regexp selecting scenarios to run (default all)")
		out       = fs.String("out", "", "write the record to this file (default stdout)")
		reps      = fs.Int("reps", 5, "wall mode: timed repetitions per scenario")
		warmup    = fs.Int("warmup", 1, "wall mode: untimed warmup runs per scenario")
		compare   = fs.String("compare", "", "baseline file to gate against")
		current   = fs.String("current", "", "with -compare: pre-recorded current file instead of running the suite")
		tol       = fs.Float64("tol", schema.DefaultWallPct, "with -compare: wall-mode tolerance band (fraction, e.g. 0.25)")
		validate  = fs.String("validate", "", "schema-check this record file and exit")
		list      = fs.Bool("list", false, "print the pinned scenario names and exit")
		quiet     = fs.Bool("quiet", false, "suppress per-scenario progress")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mndmst-bench: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	if *list {
		for _, name := range harness.Names() {
			fmt.Println(name)
		}
		return 0
	}
	if *validate != "" {
		f, err := schema.Load(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mndmst-bench: %v\n", err)
			return 2
		}
		fmt.Printf("%s: valid %s record (%s mode, %d scenarios)\n", *validate, f.Schema, f.Mode, len(f.Scenarios))
		return 0
	}
	if *compare != "" {
		return runCompare(*compare, *current, *mode, *scale, *scenarios, *reps, *warmup, *tol, *quiet)
	}

	f, err := runSuite(*mode, *scale, *scenarios, *reps, *warmup, *quiet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mndmst-bench: %v\n", err)
		return 2
	}
	if err := emit(f, *out); err != nil {
		fmt.Fprintf(os.Stderr, "mndmst-bench: %v\n", err)
		return 2
	}
	return 0
}

func runSuite(mode string, scale float64, filter string, reps, warmup int, quiet bool) (*schema.File, error) {
	cfg := harness.Config{Mode: mode, Scale: scale, Reps: reps, Warmup: warmup}
	if filter != "" {
		re, err := regexp.Compile(filter)
		if err != nil {
			return nil, fmt.Errorf("bad -scenarios regexp: %w", err)
		}
		cfg.Filter = re
	}
	if !quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return harness.Run(cfg)
}

func emit(f *schema.File, out string) error {
	if out == "" {
		buf, err := schema.Encode(f)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := schema.Write(out, f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d scenarios)\n", out, len(f.Scenarios))
	return nil
}

func runCompare(baselinePath, currentPath, mode string, scale float64, filter string, reps, warmup int, tol float64, quiet bool) int {
	baseline, err := schema.Load(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mndmst-bench: baseline: %v\n", err)
		return 2
	}
	var cur *schema.File
	if currentPath != "" {
		if cur, err = schema.Load(currentPath); err != nil {
			fmt.Fprintf(os.Stderr, "mndmst-bench: current: %v\n", err)
			return 2
		}
	} else {
		// Re-measure under the baseline's own conditions so the diff is
		// apples-to-apples; explicit flags for mode/scale are ignored in
		// favor of what the baseline records.
		_ = mode
		cur, err = runSuite(baseline.Mode, baseline.Scale, filter, reps, warmup, quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mndmst-bench: %v\n", err)
			return 2
		}
	}
	if filter != "" && currentPath == "" {
		// A filtered run legitimately lacks the unmatched baseline
		// scenarios; restrict the baseline to the same subset.
		re, err := regexp.Compile(filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mndmst-bench: bad -scenarios regexp: %v\n", err)
			return 2
		}
		baseline = subsetFile(baseline, re)
	}
	res, err := schema.Compare(baseline, cur, schema.Tolerance{WallPct: tol})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mndmst-bench: %v\n", err)
		return 2
	}
	res.Report(os.Stdout)
	if !res.Passed() {
		return 1
	}
	return 0
}

// subsetFile restricts f to the scenarios matching re.
func subsetFile(f *schema.File, re *regexp.Regexp) *schema.File {
	out := *f
	out.Scenarios = nil
	for _, sc := range f.Scenarios {
		if re.MatchString(sc.Name) {
			out.Scenarios = append(out.Scenarios, sc)
		}
	}
	return &out
}

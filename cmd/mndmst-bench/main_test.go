package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mndmst/internal/bench/schema"
)

// benchArgs is the cheap filtered subset the CLI tests measure: the two
// comm scenarios at a small scale, deterministic and fast.
func benchArgs(out string) []string {
	return []string{"-quiet", "-mode", "sim", "-scale", "0.02", "-scenarios", "^comm/", "-out", out}
}

func TestSimRunsAreByteIdentical(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if code := run(benchArgs(a)); code != 0 {
		t.Fatalf("first run exited %d", code)
	}
	if code := run(benchArgs(b)); code != 0 {
		t.Fatalf("second run exited %d", code)
	}
	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ba) == 0 || !bytes.Equal(ba, bb) {
		t.Fatalf("sim runs differ (%d vs %d bytes)", len(ba), len(bb))
	}
}

func TestCompareDetectsPerturbation(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "cur.json")
	if code := run(benchArgs(cur)); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	f, err := schema.Load(cur)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb one metric; in sim mode any change must gate.
	f.Scenarios[0].Metrics["bytes_sent"] *= 2
	base := filepath.Join(dir, "base.json")
	if err := schema.Write(base, f); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-compare", base, "-current", cur}); code != 1 {
		t.Fatalf("perturbed compare exited %d, want 1", code)
	}
	if code := run([]string{"-compare", cur, "-current", cur}); code != 0 {
		t.Fatalf("self compare exited %d, want 0", code)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.json":   "",
		"garbage.json": "not json",
		"wrong.json":   `{"schema":"other/v9"}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if code := run([]string{"-validate", p}); code != 2 {
			t.Errorf("-validate %s exited %d, want 2", name, code)
		}
	}
	if code := run([]string{"-validate", filepath.Join(dir, "missing.json")}); code != 2 {
		t.Error("-validate on a missing file must exit 2")
	}
}

func TestValidateAcceptsRealRecord(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "ok.json")
	if code := run(benchArgs(p)); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	if code := run([]string{"-validate", p}); code != 0 {
		t.Fatal("-validate rejected a freshly produced record")
	}
}

func TestUnknownScenarioFilterFails(t *testing.T) {
	if code := run([]string{"-quiet", "-scenarios", "no-such-scenario", "-out", filepath.Join(t.TempDir(), "x.json")}); code != 2 {
		t.Fatalf("empty filter match exited %d, want 2", code)
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the design ablations, printing the results as
// aligned text tables (or JSON with -json). The output of a full-scale run
// is recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # all tables and figures at full scale
//	experiments -scale 0.1      # quick pass
//	experiments -only Table3    # a single experiment
//	experiments -ablations      # the design ablations as well
//	experiments -verify         # cross-check every forest against Kruskal
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mndmst/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

var experimentOrder = []string{
	"Table2", "Table3", "Table4",
	"Figure4", "Figure5", "Figure6", "Figure7", "Figure8",
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		scale     = fs.Float64("scale", 1.0, "workload scale (1.0 = reproduction size)")
		only      = fs.String("only", "", "run a single experiment: Table2..4, Figure4..8, MultiGPU")
		ablations = fs.Bool("ablations", false, "also run the design ablations")
		verify    = fs.Bool("verify", false, "cross-check every forest against sequential Kruskal")
		asJSON    = fs.Bool("json", false, "emit tables as JSON instead of text")
		asMD      = fs.Bool("markdown", false, "emit tables as GitHub markdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := bench.Opts{Scale: *scale, Verify: *verify}
	exps := map[string]func(bench.Opts) (*bench.Table, error){
		"Table2": bench.Table2, "Table3": bench.Table3, "Table4": bench.Table4,
		"Figure4": bench.Figure4, "Figure5": bench.Figure5, "Figure6": bench.Figure6,
		"Figure7": bench.Figure7, "Figure8": bench.Figure8,
		"MultiGPU": bench.ExtensionMultiGPU, "Heterogeneous": bench.ExtensionHeterogeneous,
		"Applications": bench.ExtensionApplications, "WeakScaling": bench.ExtensionWeakScaling,
	}

	emit := func(name string, fn func(bench.Opts) (*bench.Table, error)) error {
		start := time.Now() //lint:wallclock human-facing progress timing; never feeds simulated results
		t, err := fn(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *asJSON {
			b, err := t.JSON()
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(out, string(b))
			return nil
		}
		if *asMD {
			fmt.Fprintln(out, t.Markdown())
			return nil
		}
		fmt.Fprintln(out, t.String())
		//lint:wallclock human-facing progress timing; never feeds simulated results
		fmt.Fprintf(out, "(%s took %v)\n", name, time.Since(start).Round(time.Millisecond))
		fmt.Fprintln(out, strings.Repeat("=", 80))
		return nil
	}

	if *only != "" {
		fn, ok := exps[*only]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *only)
		}
		return emit(*only, fn)
	}

	for _, name := range experimentOrder {
		if err := emit(name, exps[name]); err != nil {
			return err
		}
	}
	if *ablations {
		start := time.Now() //lint:wallclock human-facing progress timing; never feeds simulated results
		tabs, err := bench.Ablations(opts)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		for _, t := range tabs {
			if *asJSON {
				b, err := t.JSON()
				if err != nil {
					return err
				}
				fmt.Fprintln(out, string(b))
			} else {
				fmt.Fprintln(out, t.String())
			}
		}
		if !*asJSON {
			//lint:wallclock human-facing progress timing; never feeds simulated results
			fmt.Fprintf(out, "(ablations took %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestExperimentsSingle(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "Table2", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "road_usa") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestExperimentsJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "Table2", "-scale", "0.05", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"title"`) {
		t.Fatalf("output: %s", out.String())
	}
}

func TestExperimentsMultiGPU(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "MultiGPU", "-scale", "0.03"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "GPUs/node") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestExperimentsUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "Table99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

#!/bin/sh
# Coverage ratchet: runs the full test suite with -covermode=atomic and
# enforces per-package floors from coverage.floor.txt. Floors are
# ratchet-only — `--update` raises a package's floor when its coverage
# grew (current minus a small slack) but never lowers one, so coverage
# can only trend up. A package below its floor fails the gate.
#
#   scripts/coverage.sh            check against the committed floors
#   scripts/coverage.sh --update   raise floors to match current coverage
#
# The worst-covered packages table is printed at the end; CI appends it
# to the job summary. The merged profile lands in cover.out (override
# with MNDMST_COVERPROFILE) for go tool cover -html inspection.
set -eu
cd "$(dirname "$0")/.."

floors=coverage.floor.txt
profile="${MNDMST_COVERPROFILE:-cover.out}"
# Slack --update leaves between measured coverage and the new floor, so
# benign run-to-run jitter (timing-dependent error paths) doesn't fail
# the next gate. In percentage points.
slack=2.0

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== go test -covermode=atomic (full tree) =="
if ! go test -covermode=atomic -coverprofile="$profile" ./... > "$tmp/out.txt" 2>&1; then
    cat "$tmp/out.txt"
    echo "coverage: test suite failed" >&2
    exit 1
fi

# Flatten to "package percent" pairs ("ok <pkg> <time> coverage: N% of
# statements" and the bare no-test-binary form both parse).
awk '/coverage:/ {
    pkg = ""; pct = ""
    for (i = 1; i <= NF; i++) {
        if ($i ~ /^mndmst/) pkg = $i
        if ($i ~ /%$/) { pct = $i; sub(/%/, "", pct) }
    }
    if (pkg != "" && pct != "") print pkg, pct
}' "$tmp/out.txt" | sort > "$tmp/cover.txt"

if [ ! -s "$tmp/cover.txt" ]; then
    cat "$tmp/out.txt"
    echo "coverage: no coverage lines in test output" >&2
    exit 1
fi

if [ "${1:-}" = "--update" ]; then
    # Ratchet: new floor = max(old floor, current - slack), one decimal.
    # Packages with zero coverage (examples, scaffolding) get no floor.
    : > "$tmp/floors.new"
    while read -r pkg pct; do
        old=$(awk -v p="$pkg" '$1 == p { print $2 }' "$floors" 2>/dev/null || true)
        new=$(awk -v c="$pct" -v s="$slack" -v o="${old:-0}" 'BEGIN {
            f = c - s; if (f < o) f = o; if (f < 0) f = 0; printf "%.1f", f }')
        if awk -v c="$pct" 'BEGIN { exit !(c > 0) }'; then
            printf '%s %s\n' "$pkg" "$new" >> "$tmp/floors.new"
        fi
    done < "$tmp/cover.txt"
    {
        echo "# Per-package coverage floors (percent), enforced by scripts/coverage.sh."
        echo "# Ratchet-only: regenerate with scripts/coverage.sh --update — floors rise"
        echo "# with coverage but never fall. Lowering one by hand is a reviewed decision."
        sort "$tmp/floors.new"
    } > "$floors"
    echo "updated $floors ($(grep -c '^mndmst' "$floors") packages)"
    exit 0
fi

[ -f "$floors" ] || { echo "coverage: $floors missing; run scripts/coverage.sh --update" >&2; exit 1; }

status=0
while read -r pkg floor; do
    case "$pkg" in ''|\#*) continue ;; esac
    pct=$(awk -v p="$pkg" '$1 == p { print $2 }' "$tmp/cover.txt")
    if [ -z "$pct" ]; then
        echo "FAIL $pkg: package missing from test output (deleted? update $floors)"
        status=1
        continue
    fi
    if awk -v c="$pct" -v f="$floor" 'BEGIN { exit !(c < f) }'; then
        echo "FAIL $pkg: coverage $pct% fell below floor $floor%"
        status=1
    fi
done < "$floors"

echo
echo "== worst-covered packages =="
sort -k2 -n "$tmp/cover.txt" | awk '$2 > 0' | head -8 | awk '{ printf "%7.1f%%  %s\n", $2, $1 }'

if [ "$status" -ne 0 ]; then
    echo "coverage ratchet failed: raise tests, or (reviewed) lower the floor in $floors" >&2
    exit 1
fi
echo "coverage ratchet passed"

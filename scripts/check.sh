#!/bin/sh
# Release gate: build, vet, format check, full tests, quick benches.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" "$unformatted"
    exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== race (core packages) =="
go test -race ./internal/transport/ ./internal/cluster/ ./internal/boruvka/ ./internal/dsu/ ./internal/hashtable/

echo "== multi-process smoke (loopback TCP workers) =="
go run ./cmd/mndmst -launch local:4 -profile arabic-2005 -scale 0.05 -verify

echo "== benches (smoke) =="
go test -run XXX -bench 'BenchmarkTable2|BenchmarkFindMSFHost' -benchtime 1x .

echo "all checks passed"

#!/bin/sh
# Release gate: format check, static analysis, build, vet, full tests,
# full race matrix, smokes, quick benches. Mirrors .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" "$unformatted"
    exit 1
fi

echo "== build =="
go build ./...

echo "== mndmst-lint (project invariants) =="
go run ./cmd/mndmst-lint ./...
echo "== mndmst-lint (self-test: bad corpus must fail) =="
if go run ./cmd/mndmst-lint -q ./internal/lint/testdata/src/bad >/dev/null 2>&1; then
    echo "mndmst-lint accepted the known-bad corpus" >&2
    exit 1
fi

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== race (full matrix) =="
go test -race ./...

echo "== deadlock regression (race, tight timeout) =="
# The merge-communication deadlock class must stay dead: the legacy
# send-all-then-receive-all schedule wedges over bounded buffers while the
# interleaved engine completes. A tight -timeout turns any reintroduced
# hang into a fast failure instead of a 10-minute stall.
go test -race -timeout 90s \
    -run 'TestLegacyExchangeDeadlocksUnderBoundedBuffers|TestExchangeDeltasBoundedBuffersNoDeadlock|TestExchangeMemTCPSimulatedTimeParity' \
    ./internal/merge/

echo "== multi-process smoke (loopback TCP workers) =="
go run ./cmd/mndmst -launch local:4 -profile arabic-2005 -scale 0.05 -verify

echo "== benches (smoke; emits BENCH_comm.json) =="
MNDMST_BENCH_SCALE="${MNDMST_BENCH_SCALE:-0.1}" \
    go test -run XXX -bench 'BenchmarkTable2|BenchmarkFindMSFHost|BenchmarkExchangeComm' -benchtime 1x .
cat BENCH_comm.json

echo "all checks passed"

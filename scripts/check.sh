#!/bin/sh
# Release gate: format check, static analysis, build, vet, full tests,
# full race matrix, smokes, quick benches. Mirrors .github/workflows/ci.yml.
#
#   scripts/check.sh          full gate (includes the chaos + serve suites)
#   scripts/check.sh --chaos  chaos + differential oracle suite only:
#                             two fixed seeds plus one rotating seed,
#                             logged so any failure replays exactly via
#                             MNDMST_TEST_SEED=<seed>
#   scripts/check.sh --serve  job-service suite only: race-checked serve
#                             and mndmst-serve tests (concurrent HTTP
#                             clients, coalescing, admission, SIGTERM
#                             drain) plus the throughput bench that emits
#                             BENCH_serve.json
#   scripts/check.sh --bench  perf-regression gate only: the mndmst-bench
#                             sim suite twice (byte-identity required),
#                             validated and compared against the committed
#                             bench.baseline.json
#   scripts/check.sh --coverage
#                             coverage ratchet only (scripts/coverage.sh)
set -eu
cd "$(dirname "$0")/.."

run_bench() {
    # Perf-regression gate: the deterministic sim suite must (a) produce
    # byte-identical records across two runs — any nondeterminism voids
    # the exact-diff contract — and (b) match the committed baseline
    # exactly. A drifted metric is a perf change: bless it by
    # regenerating bench.baseline.json in the same commit.
    echo "== perf-regression harness (sim gate) =="
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    go build -o "$tmp/mndmst-bench" ./cmd/mndmst-bench
    "$tmp/mndmst-bench" -mode sim -quiet -out "$tmp/run1.json"
    "$tmp/mndmst-bench" -mode sim -quiet -out "$tmp/run2.json"
    cmp "$tmp/run1.json" "$tmp/run2.json" || {
        echo "bench gate: two sim runs are not byte-identical" >&2
        exit 1
    }
    "$tmp/mndmst-bench" -validate "$tmp/run1.json"
    "$tmp/mndmst-bench" -compare bench.baseline.json -current "$tmp/run1.json" || {
        echo "bench gate: regression vs bench.baseline.json — if intentional, regenerate the baseline:" >&2
        echo "  go run ./cmd/mndmst-bench -mode sim -out bench.baseline.json" >&2
        exit 1
    }
    trap - EXIT
    rm -rf "$tmp"
}

run_serve() {
    # Job-service suite: the serve package and its binary under the race
    # detector (the HTTP e2e test runs 8 concurrent clients; the smoke
    # test delivers a real SIGTERM), then the cold/hot-cache throughput
    # bench so BENCH_serve.json tracks serving overhead across revisions.
    echo "== serve suite (race) =="
    go test -race -timeout 300s -count=1 ./internal/serve/ ./cmd/mndmst-serve/
    echo "== serve throughput bench (emits BENCH_serve.json) =="
    MNDMST_BENCH_SERVE_OUT="$PWD/BENCH_serve.json" \
        go test -run XXX -bench BenchmarkServeThroughput -benchtime 50x ./internal/serve/
    # A silently-empty or truncated record must fail the gate, so the
    # emitted file is validated structurally, not just printed.
    go run ./cmd/mndmst-bench -validate BENCH_serve.json
    run_metrics_smoke
}

run_metrics_smoke() {
    # Metrics smoke against the real binary: start mndmst-serve, run the
    # same job twice (cold compute, then cache hit), and require the
    # /metrics exposition to show exactly that — the grep is on full
    # sample lines, so a renamed series or a miscounted increment fails
    # the gate, not just an empty scrape.
    echo "== serve metrics smoke (live /metrics scrape) =="
    tmp=$(mktemp -d)
    trap 'kill "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
    go build -o "$tmp/mndmst-serve" ./cmd/mndmst-serve
    "$tmp/mndmst-serve" -listen 127.0.0.1:0 -workers 2 > "$tmp/serve.log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.*serving on \([0-9.:]*\).*/\1/p' "$tmp/serve.log")
        [ -n "$addr" ] && break
        kill -0 "$serve_pid" 2>/dev/null || { cat "$tmp/serve.log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "mndmst-serve never announced its address" >&2; cat "$tmp/serve.log"; exit 1; }
    body='{"graph":{"profile":"road_usa","scale":0.05},"options":{"nodes":2},"wait":true}'
    curl -sf "http://$addr/v1/jobs" -d "$body" > /dev/null
    curl -sf "http://$addr/v1/jobs" -d "$body" > /dev/null
    curl -sf "http://$addr/metrics" > "$tmp/metrics.txt"
    for line in \
        'mndmst_serve_jobs_total{state="done"} 2' \
        'mndmst_serve_result_cache_misses_total 1' \
        'mndmst_serve_result_cache_hits_total 1' \
        'mndmst_serve_job_seconds_count{cache="cold"} 1' \
        'mndmst_serve_job_seconds_count{cache="hot"} 1' \
        'mndmst_serve_queue_depth 0'; do
        if ! grep -qF "$line" "$tmp/metrics.txt"; then
            echo "metrics smoke: missing exact line: $line" >&2
            cat "$tmp/metrics.txt"
            exit 1
        fi
    done
    grep -q '^mndmst_run_phase_compute_seconds{phase=' "$tmp/metrics.txt" || {
        echo "metrics smoke: no per-phase run gauges" >&2
        cat "$tmp/metrics.txt"
        exit 1
    }
    kill -TERM "$serve_pid"
    wait "$serve_pid" || { echo "mndmst-serve did not drain cleanly on SIGTERM" >&2; cat "$tmp/serve.log"; exit 1; }
    trap - EXIT
    rm -rf "$tmp"
    echo "metrics smoke passed"
}

run_chaos() {
    # Fault-injection suite: deterministic chaos transport + differential
    # MSF oracle, race-checked and deadline-bounded so any reintroduced
    # hang fails fast. Two pinned seeds keep the gate reproducible; the
    # rotating seed walks fresh fault schedules and is printed so a red
    # run can be replayed bit-identically.
    rotating=$(date +%s)
    for seed in 1 20240724 "$rotating"; do
        echo "== chaos + oracle suite (seed $seed; replay with MNDMST_TEST_SEED=$seed) =="
        MNDMST_TEST_SEED="$seed" go test -race -timeout 120s -count=1 ./internal/chaos/
        MNDMST_TEST_SEED="$seed" go test -race -timeout 120s -count=1 -run TestFindMSFDistributed .
        MNDMST_TEST_SEED="$seed" go test -race -timeout 120s -count=1 -run TestRetryOracle ./internal/serve/
    done
}

if [ "${1:-}" = "--chaos" ]; then
    run_chaos
    echo "chaos checks passed"
    exit 0
fi

if [ "${1:-}" = "--serve" ]; then
    run_serve
    echo "serve checks passed"
    exit 0
fi

if [ "${1:-}" = "--bench" ]; then
    run_bench
    echo "bench gate passed"
    exit 0
fi

if [ "${1:-}" = "--coverage" ]; then
    exec scripts/coverage.sh
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" "$unformatted"
    exit 1
fi

echo "== build =="
go build ./...

echo "== mndmst-lint (project invariants, baseline-gated) =="
# Exit 1 means new findings (fix, justify, or baseline them); exit 2 means
# the analysis itself failed to run — report them differently so a broken
# loader is never mistaken for a dirty tree.
set +e
go run ./cmd/mndmst-lint -baseline lint.baseline.json ./...
lint_status=$?
set -e
case $lint_status in
    0) ;;
    1) echo "mndmst-lint: new findings above — fix them, justify with //lint:<token>, or baseline with -update-baseline" >&2
       exit 1 ;;
    *) echo "mndmst-lint: analysis failed to run (exit $lint_status)" >&2
       exit 1 ;;
esac

echo "== mndmst-lint (self-test: bad corpus must exit 1) =="
set +e
go run ./cmd/mndmst-lint -q ./internal/lint/testdata/src/bad >/dev/null 2>&1
corpus_status=$?
set -e
if [ "$corpus_status" -ne 1 ]; then
    echo "mndmst-lint: known-bad corpus exited $corpus_status, want 1 (findings)" >&2
    exit 1
fi

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== race (full matrix) =="
go test -race ./...

echo "== deadlock regression (race, tight timeout) =="
# The merge-communication deadlock class must stay dead: the legacy
# send-all-then-receive-all schedule wedges over bounded buffers while the
# interleaved engine completes. A tight -timeout turns any reintroduced
# hang into a fast failure instead of a 10-minute stall.
go test -race -timeout 90s \
    -run 'TestLegacyExchangeDeadlocksUnderBoundedBuffers|TestExchangeDeltasBoundedBuffersNoDeadlock|TestExchangeMemTCPSimulatedTimeParity' \
    ./internal/merge/

run_chaos

run_serve

echo "== multi-process smoke (loopback TCP workers) =="
go run ./cmd/mndmst -launch local:4 -profile arabic-2005 -scale 0.05 -verify

echo "== json record smoke (CLI/server shared schema) =="
go run ./cmd/mndmst -profile arabic-2005 -scale 0.05 -verify -json

echo "== benches (smoke; emits BENCH_comm.json) =="
MNDMST_BENCH_SCALE="${MNDMST_BENCH_SCALE:-0.1}" \
    go test -run XXX -bench 'BenchmarkTable2|BenchmarkFindMSFHost|BenchmarkExchangeComm' -benchtime 1x .
# A silently-empty or truncated record must fail the gate, so the emitted
# file is validated structurally, not just printed.
go run ./cmd/mndmst-bench -validate BENCH_comm.json

run_bench

echo "all checks passed"

// Package mndmst is a reproduction of "MND-MST: A Multi-Node Multi-Device
// Parallel Boruvka's MST Algorithm" (Panja & Vadhiyar, ICPP 2018) as a pure
// Go library.
//
// The package computes minimum spanning forests with the paper's
// divide-and-conquer algorithm on a simulated distributed-memory machine:
// the graph is 1D-partitioned across ranks (and, within a rank, across a
// CPU and a simulated GPU device), each device runs independent Boruvka
// computations under the border-vertex exception condition, and the partial
// results are combined by hierarchical ring-based merging. A
// Pregel+-style BSP baseline, sequential reference algorithms, synthetic
// workload generators matching the paper's Table 2 graphs, and the full
// experiment harness for every table and figure live behind the same API.
//
// All reported times are deterministic simulated seconds derived from work
// counters and an α–β network model (see DESIGN.md); the computation
// itself really runs, in parallel, on the host.
//
// Quick start:
//
//	g := mndmst.GenerateWebGraph(100_000, 2_000_000, 0.85, 42)
//	res, err := mndmst.FindMSF(g, mndmst.Options{Nodes: 16})
//	if err != nil { ... }
//	fmt.Println(res.TotalWeight, res.SimSeconds)
package mndmst

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mndmst/internal/boruvka"
	"mndmst/internal/bsp"
	"mndmst/internal/chaos"
	"mndmst/internal/cluster"
	"mndmst/internal/core"
	"mndmst/internal/cost"
	"mndmst/internal/gen"
	"mndmst/internal/graph"
	"mndmst/internal/hypar"
	"mndmst/internal/mst"
	"mndmst/internal/obs"
	"mndmst/internal/trace"
	"mndmst/internal/transport"
	"mndmst/internal/wire"
)

// Graph is a weighted undirected multigraph. Edge weights are made
// globally distinct internally, so every Graph has a unique minimum
// spanning forest.
type Graph struct {
	el *graph.EdgeList
}

// NumVertices reports the vertex count.
func (g *Graph) NumVertices() int { return int(g.el.N) }

// NumEdges reports the undirected edge count (including any parallel and
// self edges, which the algorithms ignore or deduplicate).
func (g *Graph) NumEdges() int { return len(g.el.Edges) }

// Edge describes one undirected edge of a Graph.
type Edge struct {
	U, V int32
	// Weight is the 16-bit input weight; ties between equal weights are
	// broken internally by edge index.
	Weight uint16
}

// NewGraph builds a Graph from explicit edges. Endpoints must lie in
// [0, n); self loops and parallel edges are allowed.
func NewGraph(n int32, edges []Edge) (*Graph, error) {
	el := &graph.EdgeList{N: n, Edges: make([]graph.Edge, len(edges))}
	if len(edges) > graph.MaxEdges {
		return nil, fmt.Errorf("mndmst: too many edges (%d > %d)", len(edges), graph.MaxEdges)
	}
	for i, e := range edges {
		el.Edges[i] = graph.Edge{
			U: e.U, V: e.V, ID: int32(i),
			W: graph.MakeWeight(e.Weight, int32(i)),
		}
	}
	if err := el.Validate(); err != nil {
		return nil, err
	}
	return &Graph{el: el}, nil
}

// EdgeAt returns the i-th edge.
func (g *Graph) EdgeAt(i int) Edge {
	e := g.el.Edges[i]
	return Edge{U: e.U, V: e.V, Weight: graph.WeightRand(e.W)}
}

// Stats summarizes the graph as in the paper's Table 2.
type Stats struct {
	Vertices   int
	Edges      int
	AvgDegree  float64
	MaxDegree  int64
	ApproxDiam int
	Components int
}

// ComputeStats gathers graph statistics (BFS-based approximate diameter).
func (g *Graph) ComputeStats() Stats {
	st := graph.ComputeStats(graph.MustBuildCSR(g.el))
	return Stats{
		Vertices:   int(st.V),
		Edges:      int(st.E),
		AvgDegree:  st.AvgDegree,
		MaxDegree:  st.MaxDegree,
		ApproxDiam: st.ApproxDiam,
		Components: st.Components,
	}
}

// Digest returns the content digest of the graph ("sha256:..."): a hash
// of the canonical container bytes, identical for two graphs exactly when
// they have the same vertices, edge order, and weights. The serving layer
// keys its graph and result caches by this digest, so repeated jobs over
// the same content — however it was loaded or generated — share work.
func (g *Graph) Digest() string { return graph.Digest(g.el) }

// SaveGraph writes the graph to a binary container file.
func SaveGraph(path string, g *Graph) error { return graph.SaveEdgeList(path, g.el) }

// LoadGraph reads a graph written by SaveGraph.
func LoadGraph(path string) (*Graph, error) {
	el, err := graph.LoadEdgeList(path)
	if err != nil {
		return nil, err
	}
	return &Graph{el: el}, nil
}

// --- Generators ---

// GenerateRoadNetwork builds a road_usa-like graph: near-planar, average
// degree ≈ 2.4, large diameter.
func GenerateRoadNetwork(n int, seed int64) *Graph {
	return &Graph{el: gen.RoadNetwork(n, seed)}
}

// GenerateWebGraph builds a web-crawl-like graph with power-law degrees
// and the given fraction of short-range (local) links.
func GenerateWebGraph(n int32, m int, locality float64, seed int64) *Graph {
	return &Graph{el: gen.WebGraph(n, m, locality, seed)}
}

// GenerateRMAT builds a Graph500-style R-MAT graph (no locality).
func GenerateRMAT(n int32, m int, seed int64) *Graph {
	return &Graph{el: gen.RMAT(n, m, seed)}
}

// GenerateProfile materializes one of the paper's Table 2 workload
// analogues ("road_usa", "gsh-2015-tpd", "arabic-2005", "it-2004",
// "sk-2005", "uk-2007") at the given scale (1.0 = reproduction size,
// ~1/1000 of the paper's graphs).
func GenerateProfile(name string, scale float64) (*Graph, error) {
	p, err := gen.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return &Graph{el: p.Generate(scale)}, nil
}

// ProfileNames lists the available Table 2 workload profiles in paper
// order.
func ProfileNames() []string {
	names := make([]string, len(gen.Profiles))
	for i, p := range gen.Profiles {
		names[i] = p.Name
	}
	return names
}

// --- Machines ---

// Machine identifies a simulated platform from the paper's §5.1.
type Machine int

// Available machine models.
const (
	// AMDCluster is the 16-node AMD Opteron 3380 cluster (8 cores/node,
	// Ethernet-class network, no GPU).
	AMDCluster Machine = iota
	// CrayXC40 is the Cray XC40 (12-core Xeon + Tesla K40 per node, Aries
	// network).
	CrayXC40
)

func (m Machine) model() cost.Machine {
	switch m {
	case CrayXC40:
		return cost.CrayXC40()
	default:
		return cost.AMDCluster()
	}
}

// String names the machine.
func (m Machine) String() string { return m.model().Name }

// --- Running the algorithms ---

// ExceptionCondition selects the indComp exception condition.
type ExceptionCondition int

// Exception conditions of the HyPar API (§4.1.2).
const (
	// BorderVertex is EXCPT_BORDER_VERTEX, the Algorithm 1 default: a
	// component whose lightest edge leaves the partition stops expanding.
	BorderVertex ExceptionCondition = iota
	// BorderEdge is EXCPT_BORDER_EDGE: components touching the partition
	// border never expand (more conservative).
	BorderEdge
)

// TransportKind selects how simulated ranks exchange messages.
type TransportKind int

// Available transports.
const (
	// TransportInProcess runs every rank as a goroutine of this process
	// with in-memory mailboxes — the default, fully deterministic mode.
	TransportInProcess TransportKind = iota
	// TransportTCP runs this process as ONE rank of a multi-process
	// cluster over real loopback/LAN sockets. Requires Options.Cluster.
	TransportTCP
)

// ClusterConfig describes how a TransportTCP rank joins its cluster. The
// zero value of every field picks a sensible default except Coordinator,
// which is required.
type ClusterConfig struct {
	// Coordinator is the host:port of the rendezvous coordinator every
	// worker dials to be assigned a rank (required).
	Coordinator string
	// Listen is the local address workers accept peer connections on
	// (default "127.0.0.1:0", an ephemeral loopback port).
	Listen string
	// DialTimeout bounds each coordinator/peer dial, including retries
	// with exponential backoff (default 10s).
	DialTimeout time.Duration
	// HeartbeatInterval is the idle-link keepalive period (default 500ms).
	HeartbeatInterval time.Duration
	// PeerTimeout is how long a silent peer is tolerated before it is
	// declared dead and blocked receives fail (default 5s).
	PeerTimeout time.Duration
	// Metrics, when non-nil, receives this rank's transport counters
	// (frames/bytes per peer, send-queue high-water, dial retries) and —
	// with Options.Chaos — injected-fault counts. One registry per
	// process; nil disables instrumentation at zero cost.
	Metrics *obs.Registry
	// RetrySeed seeds the jittered dial/rendezvous backoff schedule so a
	// failed join replays exactly under the same seed (0 derives one from
	// the clock). Give each rank a distinct seed — that is what keeps a
	// thundering herd of workers from retrying in lockstep.
	RetrySeed int64
	// Cancel, when non-nil, aborts in-flight dial and rendezvous retry
	// loops (backoff sleeps included) as soon as it is closed: a draining
	// process stops re-dialing immediately instead of sleeping out its
	// backoff. Closing it does not tear down an established transport.
	Cancel <-chan struct{}
}

func (c ClusterConfig) tcp() transport.TCPConfig {
	return transport.TCPConfig{
		Coordinator:       c.Coordinator,
		Listen:            c.Listen,
		DialTimeout:       c.DialTimeout,
		HeartbeatInterval: c.HeartbeatInterval,
		PeerTimeout:       c.PeerTimeout,
		Metrics:           c.Metrics,
		RetrySeed:         c.RetrySeed,
		Cancel:            c.Cancel,
	}
}

// Coordinator hosts the rank-assignment rendezvous of a TCP cluster: it
// listens on a socket, waits for the configured number of workers to join,
// hands each one its rank and the peer address table, and exits. Start one
// per cluster (typically in the launching process) before workers dial in.
type Coordinator struct {
	inner *transport.Coordinator
	done  chan error
}

// StartCoordinator begins serving a ranks-worker rendezvous on addr
// (e.g. "127.0.0.1:0" for an ephemeral port). Serving happens in the
// background; call Wait to block until all workers joined.
func StartCoordinator(addr string, ranks int) (*Coordinator, error) {
	inner, err := transport.NewCoordinator(addr, ranks, 0)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{inner: inner, done: make(chan error, 1)}
	//lint:detached joined later via Coordinator.Wait's receive on c.done; buffered so Serve never leaks
	go func() { c.done <- inner.Serve() }()
	return c, nil
}

// Addr returns the address workers should dial (resolved port included).
func (c *Coordinator) Addr() string { return c.inner.Addr() }

// Wait blocks until every worker has joined and been assigned a rank (or
// the rendezvous failed).
func (c *Coordinator) Wait() error { return <-c.done }

// Close shuts the rendezvous listener down.
func (c *Coordinator) Close() error { return c.inner.Close() }

// Options configures a FindMSF run. The zero value runs on one AMD-cluster
// node, CPU only, with the paper's default tunables.
type Options struct {
	// Nodes is the number of simulated cluster nodes (default 1).
	Nodes int
	// Machine selects the platform model (default AMDCluster).
	Machine Machine
	// UseGPU enables the per-node CPU+GPU split (requires a machine with
	// an accelerator, i.e. CrayXC40).
	UseGPU bool
	// GPUsPerNode sets the accelerator count per node when UseGPU is set
	// (0 means 1).
	GPUsPerNode int
	// GroupSize is the hierarchical-merging group size (default 4).
	GroupSize int
	// Exception selects the indComp exception condition.
	Exception ExceptionCondition
	// DiminishingTermination enables the §4.3.2 early-stop strategy.
	DiminishingTermination bool
	// TopologyDriven disables the data-driven worklists (ablation).
	TopologyDriven bool
	// Contraction enables between-round graph contraction in the device
	// kernels.
	Contraction bool
	// GPUShare overrides the measured CPU:GPU ratio (0 = estimate it).
	GPUShare float64
	// NodeSpeeds optionally gives per-node relative throughput factors
	// for a heterogeneous cluster (length must equal Nodes; nil = the
	// paper's homogeneous assumption). The partitioner gives faster nodes
	// proportionally more work.
	NodeSpeeds []float64
	// Transport selects in-process simulation (default) or one rank of a
	// real multi-process TCP cluster.
	Transport TransportKind
	// Cluster configures the TCP cluster; required when Transport is
	// TransportTCP, ignored otherwise.
	Cluster *ClusterConfig
	// Chaos, when non-nil, wraps this worker's transport endpoint in the
	// deterministic fault-injection layer — the resilience-testing mode
	// FindMSFDistributed exposes for soak tests and failure drills. Only
	// honoured in distributed runs; FindMSF ignores it.
	Chaos *ChaosConfig
}

// ChaosConfig injects seeded, deterministic faults into one worker's
// transport: message delays, duplicates and reordering (which a correct
// run must absorb), message loss and corruption (which must surface as
// typed errors), and a scripted crash-stop of this rank. Two workers given
// the same Seed draw the same fault schedule for the same traffic, so any
// failure replays from its logged seed.
type ChaosConfig struct {
	// Seed drives every probabilistic fault decision (required for
	// reproducibility; 0 is a valid seed).
	Seed int64
	// Per-message fault probabilities in [0, 1].
	DropProb    float64
	CorruptProb float64
	DupProb     float64
	ReorderProb float64
	DelayProb   float64
	// DelayMax bounds one injected delay (default 2ms).
	DelayMax time.Duration
	// RecvTimeout bounds every receive so injected loss surfaces as a
	// typed error instead of a hang (default 30s; must exceed DelayMax).
	RecvTimeout time.Duration
	// CrashStep, when > 0, crash-stops this worker at its CrashStep-th
	// transport operation: the process's endpoint dies mid-protocol and
	// every peer must fail over cleanly.
	CrashStep uint64
}

// chaosRecvTimeoutDefault bounds receives under chaos when unset.
const chaosRecvTimeoutDefault = 30 * time.Second

func (c *ChaosConfig) wrap(ep transport.Transport, reg *obs.Registry) transport.Transport {
	cfg := chaos.Config{
		Seed:        c.Seed,
		DropProb:    c.DropProb,
		CorruptProb: c.CorruptProb,
		DupProb:     c.DupProb,
		ReorderProb: c.ReorderProb,
		DelayProb:   c.DelayProb,
		DelayMax:    c.DelayMax,
		RecvTimeout: c.RecvTimeout,
		Metrics:     reg,
	}
	if cfg.RecvTimeout <= 0 {
		cfg.RecvTimeout = chaosRecvTimeoutDefault
	}
	if c.CrashStep > 0 {
		cfg.Crashes = []chaos.Crash{{Rank: ep.Rank(), Step: c.CrashStep}}
	}
	return chaos.WrapOne(ep, cfg)
}

func (o Options) config() hypar.Config {
	cfg := hypar.DefaultConfig()
	if o.GroupSize > 0 {
		cfg.GroupSize = o.GroupSize
	}
	if o.Exception == BorderEdge {
		cfg.Excpt = boruvka.ExcptBorderEdge
	}
	cfg.DiminishingTermination = o.DiminishingTermination
	cfg.DataDriven = !o.TopologyDriven
	cfg.Contract = o.Contraction
	cfg.GPUShare = o.GPUShare
	cfg.GPUsPerNode = o.GPUsPerNode
	return cfg
}

func (o Options) nodes() int {
	if o.Nodes < 1 {
		return 1
	}
	return o.Nodes
}

// Fingerprint returns the canonical identity of every result-relevant
// option as a short string: two Options with equal fingerprints produce
// identical Results on the same Graph (same forest, same simulated
// metrics). Defaults are normalized first, so the zero Options and an
// explicit {Nodes: 1, GroupSize: 4} fingerprint identically. Execution
// plumbing that cannot change the answer — Transport, Cluster, Chaos — is
// deliberately excluded. The serving layer combines this fingerprint with
// the graph digest as its result-cache key.
func (o Options) Fingerprint() string {
	machine := "amd"
	if o.Machine == CrayXC40 {
		machine = "cray"
	}
	gpus := 0
	if o.UseGPU {
		gpus = o.GPUsPerNode
		if gpus < 1 {
			gpus = 1
		}
	}
	group := o.GroupSize
	if group <= 0 {
		group = 4 // hypar.DefaultConfig's GroupSize
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v1;nodes=%d;machine=%s;gpus=%d;group=%d;excpt=%d;dimin=%t;topo=%t;contract=%t;gpushare=%g",
		o.nodes(), machine, gpus, group, o.Exception,
		o.DiminishingTermination, o.TopologyDriven, o.Contraction, o.GPUShare)
	for _, s := range o.NodeSpeeds {
		fmt.Fprintf(&b, ";speed=%g", s)
	}
	return b.String()
}

// PhaseTime is the per-phase time split of a run.
type PhaseTime struct {
	Phase   string
	Compute float64
	Comm    float64
	// Wall is the real elapsed time of the phase, populated only for
	// multi-process (TransportTCP) runs.
	Wall float64
}

// Result describes a computed minimum spanning forest and the simulated
// execution metrics of the run that produced it.
type Result struct {
	// EdgeIDs are the indices (into the input edge list) of the forest
	// edges, ascending.
	EdgeIDs []int32
	// TotalWeight is the sum of the packed distinct weights — comparable
	// across algorithms on the same Graph.
	TotalWeight uint64
	// Components is the number of connected components spanned.
	Components int
	// SimSeconds is the simulated makespan of the run.
	SimSeconds float64
	// CommSeconds is the maximum per-rank communication time.
	CommSeconds float64
	// ComputeSeconds is the maximum per-rank compute time.
	ComputeSeconds float64
	// BytesSent and MessagesSent total across all ranks.
	BytesSent    int64
	MessagesSent int64
	// Phases is the per-phase breakdown (max across ranks).
	Phases []PhaseTime
	// WallSeconds is the real elapsed runtime (max across ranks); zero
	// for in-process runs, whose only meaningful clock is simulated.
	WallSeconds float64
	// Rank is the executing rank for multi-process runs (always 0 for
	// in-process runs, which compute every rank locally).
	Rank int
	// Root reports whether this Result carries the forest: true for
	// in-process runs and for rank 0 of a multi-process run. Non-root
	// workers return metrics only (nil EdgeIDs).
	Root bool
	// Trace gives access to the full per-rank accounting of the run (nil
	// for sequential results).
	Trace *RunTrace
}

// RunTrace exposes the per-rank simulated-run accounting in
// machine-readable (JSONL, CSV) and human-readable (Profile) forms.
type RunTrace struct {
	rep *cluster.Report
}

// WriteJSONL emits one JSON record per rank and per (rank, phase) pair.
func (t *RunTrace) WriteJSONL(w io.Writer) error { return trace.WriteJSONL(w, t.rep) }

// WriteCSV emits the per-rank, per-phase breakdown as CSV.
func (t *RunTrace) WriteCSV(w io.Writer) error { return trace.WriteCSV(w, t.rep) }

// Profile renders an aligned text view with a load-balance summary.
func (t *RunTrace) Profile() string { return trace.Profile(t.rep) }

// Records flattens the per-rank accounting into the record sequence the
// JSONL export writes — the form the serving layer embeds in HTTP job
// responses. The record type lives in internal/trace, so this accessor is
// usable only inside the module (the serve layer and the commands).
func (t *RunTrace) Records() []trace.Record { return trace.Records(t.rep) }

// Publish exports the run's totals into a metrics registry as the
// mndmst_run_* gauges (makespan, per-phase seconds, traffic) — the
// live-scrape form of the same accounting. No-op on a nil registry.
func (t *RunTrace) Publish(reg *obs.Registry) { trace.Publish(reg, t.rep) }

func resultFromReport(rep *cluster.Report) *Result {
	res := &Result{
		SimSeconds:     rep.ExecutionTime(),
		CommSeconds:    rep.CommTime(),
		ComputeSeconds: rep.ComputeTime(),
		BytesSent:      rep.TotalBytes(),
		MessagesSent:   rep.TotalMsgs(),
		WallSeconds:    rep.WallTime(),
	}
	for _, name := range rep.PhaseNames() {
		c, m := rep.PhaseTime(name)
		res.Phases = append(res.Phases, PhaseTime{
			Phase: name, Compute: c, Comm: m, Wall: rep.PhaseWall(name),
		})
	}
	res.Trace = &RunTrace{rep: rep}
	return res
}

func resultFromForest(f *mst.Forest, rep *cluster.Report) *Result {
	res := resultFromReport(rep)
	res.EdgeIDs = f.EdgeIDs
	res.TotalWeight = f.TotalWeight
	res.Components = f.Components
	res.Root = true
	return res
}

// FindMSF computes the minimum spanning forest of g with the MND-MST
// algorithm under the given options. With Options.Transport set to
// TransportTCP it runs one rank of a multi-process cluster instead (see
// FindMSFDistributed).
func FindMSF(g *Graph, opts Options) (*Result, error) {
	if opts.Transport == TransportTCP {
		if opts.Cluster == nil {
			return nil, fmt.Errorf("mndmst: TransportTCP requires Options.Cluster")
		}
		return FindMSFDistributed(g, opts, *opts.Cluster)
	}
	machine := opts.Machine.model()
	if len(opts.NodeSpeeds) > 0 {
		if len(opts.NodeSpeeds) != opts.nodes() {
			return nil, fmt.Errorf("mndmst: NodeSpeeds has %d entries for %d nodes", len(opts.NodeSpeeds), opts.nodes())
		}
		machine.NodeSpeeds = opts.NodeSpeeds
	}
	res, err := core.Run(g.el, opts.nodes(), machine, opts.config(), opts.UseGPU)
	if err != nil {
		return nil, err
	}
	return resultFromForest(res.Forest, res.Report), nil
}

// FindMSFDistributed runs this process's rank of a multi-process MND-MST
// computation over real TCP sockets. Every worker of the cluster must call
// it with the identical graph and options; the cluster size is fixed by
// the coordinator (Options.Nodes is ignored). Rank 0 returns the forest
// plus the gathered P-rank report — with both simulated clocks and real
// wall-clock phase times — while other ranks return their local metrics
// with Root == false and no forest.
func FindMSFDistributed(g *Graph, opts Options, cfg ClusterConfig) (*Result, error) {
	tcpEP, err := transport.DialTCP(cfg.tcp())
	if err != nil {
		return nil, fmt.Errorf("mndmst: join cluster: %w", err)
	}
	var ep transport.Transport = tcpEP
	if opts.Chaos != nil {
		ep = opts.Chaos.wrap(ep, cfg.Metrics)
	}
	defer ep.Close()
	machine := opts.Machine.model()
	if len(opts.NodeSpeeds) > 0 {
		if len(opts.NodeSpeeds) != ep.P() {
			return nil, fmt.Errorf("mndmst: NodeSpeeds has %d entries for %d ranks", len(opts.NodeSpeeds), ep.P())
		}
		machine.NodeSpeeds = opts.NodeSpeeds
	}
	res, err := core.RunDistributed(g.el, ep, machine, opts.config(), opts.UseGPU)
	if err != nil {
		return nil, err
	}
	var out *Result
	if res.Forest != nil {
		out = resultFromForest(res.Forest, res.Report)
	} else {
		out = resultFromReport(res.Report)
	}
	out.Rank = ep.Rank()
	return out, nil
}

// runCtx runs f on its own goroutine and waits for either its outcome or
// ctx. The underlying computation is not preemptible: when ctx fires
// first, runCtx returns ctx.Err() immediately and the goroutine finishes
// in the background, its result discarded into the buffered channel. This
// trades (bounded) abandoned work for a responsive cancellation surface —
// the serving layer's admission control relies on it to honour per-job
// deadlines without threading contexts through the simulation core.
func runCtx[T any](ctx context.Context, f func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := f()
		ch <- outcome{v, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// FindMSFContext is FindMSF bounded by a context: it returns ctx.Err() as
// soon as the context is canceled or its deadline passes. The computation
// itself is not preemptible — a canceled call abandons the in-flight run,
// which finishes in the background and is discarded.
func FindMSFContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return runCtx(ctx, func() (*Result, error) { return FindMSF(g, opts) })
}

// FindMSFBSPContext is FindMSFBSP bounded by a context, with the same
// abandon-on-cancel semantics as FindMSFContext.
func FindMSFBSPContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return runCtx(ctx, func() (*Result, error) { return FindMSFBSP(g, opts) })
}

// FindMSFBSP computes the same forest with the Pregel+-style BSP baseline
// (CPU only).
func FindMSFBSP(g *Graph, opts Options) (*Result, error) {
	res, err := bsp.Run(g.el, opts.nodes(), opts.Machine.model())
	if err != nil {
		return nil, err
	}
	return resultFromForest(res.Forest, res.Report), nil
}

// FindMSFSequential computes the forest with sequential Kruskal — the
// ground truth every parallel configuration must match exactly.
func FindMSFSequential(g *Graph) *Result {
	f := mst.Kruskal(g.el)
	return &Result{
		EdgeIDs:     f.EdgeIDs,
		TotalWeight: f.TotalWeight,
		Components:  f.Components,
		Root:        true,
	}
}

// Verify checks that res is exactly the minimum spanning forest of g.
func Verify(g *Graph, res *Result) error {
	f := &mst.Forest{EdgeIDs: res.EdgeIDs, TotalWeight: res.TotalWeight, Components: res.Components}
	return mst.VerifyForest(g.el, f)
}

// FindMSFShared computes the minimum spanning forest on a single shared-
// memory machine using the parallel device kernel directly (no cluster, no
// cost model): the fastest way to an exact forest on the host, and the
// building block the distributed algorithm runs per device.
func FindMSFShared(g *Graph) (*Result, error) {
	ids := make([]int32, g.el.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	edges := make([]wire.WEdge, len(g.el.Edges))
	for i, e := range g.el.Edges {
		edges[i] = wire.WEdge{U: e.U, V: e.V, W: e.W, ID: e.ID}
	}
	l, err := boruvka.NewLocal(ids, edges)
	if err != nil {
		return nil, err
	}
	res := boruvka.Run(l, boruvka.DefaultOptions())
	return &Result{
		EdgeIDs:     res.ChosenIDs,
		TotalWeight: res.ChosenWeight,
		Components:  res.Components,
		Root:        true,
	}, nil
}

// LoadTextGraph reads a SNAP-style whitespace edge list ("u v [weight]"
// per line, '#'/'%' comments). Vertex ids are compacted to a dense range;
// missing weights are drawn deterministically from seed.
func LoadTextGraph(path string, seed int64) (*Graph, error) {
	el, err := graph.LoadTextEdgeList(path, seed)
	if err != nil {
		return nil, err
	}
	return &Graph{el: el}, nil
}

// SaveTextGraph writes the graph in the SNAP-style text format.
func SaveTextGraph(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteTextEdgeList(f, g.el); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// GenerateBarabasiAlbert builds a preferential-attachment graph: each new
// vertex attaches k edges to existing vertices with probability
// proportional to degree.
func GenerateBarabasiAlbert(n int32, k int, seed int64) *Graph {
	return &Graph{el: gen.BarabasiAlbert(n, k, seed)}
}

// GenerateWattsStrogatz builds a small-world ring lattice (k nearest
// neighbours, rewired with probability beta).
func GenerateWattsStrogatz(n int32, k int, beta float64, seed int64) *Graph {
	return &Graph{el: gen.WattsStrogatz(n, k, beta, seed)}
}
